package abtree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/schedexplore"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

// TestLinearizableVTags checks every (a,b)-tree flavour's history under
// schedule fuzzing on the versioned-emulation backend, including the
// elided composition's fast/slow transitions (Mode-line flips).
func TestLinearizableVTags(t *testing.T) {
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"llx", func(m core.Memory) intset.Set { return NewLLX(m, 4, 8) }},
		{"hoh", func(m core.Memory) intset.Set { return NewHoH(m, 4, 8) }},
		{"elided", func(m core.Memory) intset.Set { return NewElided(m, 4, 8, 4) }},
	}
	newMem := func(threads int) core.Memory { return vtags.New(16<<20, threads) }
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				fuzz := schedfuzz.Default(seed)
				intset.CheckLinearizable(t, newMem, v.build, intset.LinearizeConfig{
					Threads:      4,
					OpsPerThread: intset.LinearizeOps(300),
					KeyRange:     24,
					Prefill:      12,
					Seed:         seed,
					Fuzz:         &fuzz,
					FlipMode:     true,
				})
			}
		})
	}
}

// TestLinearizableMachinePressure checks the tagged tree flavours on the
// machine backend with the tag budget squeezed to just above the
// hand-over-hand window ((2,4) nodes span 2 lines; the window is 4 nodes,
// so 8 lines, plus one for the elided Mode line), a small L1 for genuine
// capacity evictions, and a seed-jittered sync window.
//
// The L1 must stay comfortably above the 8-line window: every update
// allocates replacement nodes, so traversals stream fresh lines through
// the cache and occasionally evict a tagged line (the pressure we want) —
// but a cache so small that *every* locate self-evicts its window would
// livelock the pure HoH tree, which by design has no fallback path (that
// is the elided variant's job).
// TestExploreLinearizableMachine drives the HoH (a,b)-tree through the
// cycle-level schedule explorer: every execution serializes the cores,
// enumerates interleavings at op boundaries and intra-operation
// directory-locking windows, injects targeted tag evictions, and checks
// the recorded history. A violation fails with the replayable choice
// sequence and machine trace.
func TestExploreLinearizableMachine(t *testing.T) {
	newMachine := func(threads int) *machine.Machine {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 8 << 20
		return machine.New(cfg)
	}
	build := func(m core.Memory) intset.Set { return NewHoH(m, 2, 4) }
	for _, mode := range []schedexplore.Mode{schedexplore.RandomWalk, schedexplore.PCT} {
		intset.CheckExploreLinearizable(t, newMachine, build, intset.ExploreConfig{
			Threads:      3,
			OpsPerThread: 10,
			KeyRange:     8,
			Prefill:      4,
			Seed:         22,
			Mode:         mode,
			Executions:   5,
			EvictPerMil:  100,
		})
	}
}

func TestLinearizableMachinePressure(t *testing.T) {
	newMem := func(seed int64) func(threads int) core.Memory {
		return func(threads int) core.Memory {
			cfg := machine.DefaultConfig(threads)
			cfg.MemBytes = 8 << 20
			cfg.MaxTags = 9
			cfg.L1Bytes = 4 << 10
			cfg.L1Ways = 4
			cfg.L2Bytes = 16 << 10
			schedfuzz.JitterSyncWindow(&cfg, seed)
			return machine.New(cfg)
		}
	}
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"hoh", func(m core.Memory) intset.Set { return NewHoH(m, 2, 4) }},
		{"elided", func(m core.Memory) intset.Set { return NewElided(m, 2, 4, 4) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			seed := int64(5)
			fuzz := schedfuzz.Default(seed)
			intset.CheckLinearizable(t, newMem(seed), v.build, intset.LinearizeConfig{
				Threads:      4,
				OpsPerThread: intset.LinearizeOps(150),
				KeyRange:     16,
				Prefill:      8,
				Seed:         seed,
				Fuzz:         &fuzz,
				FlipMode:     true,
			})
		})
	}
}
