package abtree

import (
	"fmt"

	"repro/internal/core"
)

// This file contains the pure planning logic for every structural change:
// given consistent nodeData copies, it computes the replacement nodes. Both
// synchronization variants share it; they differ only in how the copies are
// obtained (LLX snapshots vs tagged reads) and how the plan is committed
// (SCX vs IAS).

// planLeafInsert returns the replacement for inserting key into a non-full
// leaf u (Figure 3a).
func planLeafInsert(u nodeData, key uint64) nodeData {
	return nodeData{leaf: true, keys: insertSorted(u.keys, key)}
}

// planLeafSplit returns the replacement subtree for inserting key into a
// full leaf u (Figure 3b): two fresh leaves under a fresh parent. The
// parent is flagged — preserving "all leaves have the same relaxed level" —
// unless it becomes the tree root (parent is the sentinel), where the extra
// level is legal. The top node's child slots are placeholders the caller
// fills after materializing left and right.
func planLeafSplit(u nodeData, key uint64, becomesRoot bool) (top, left, right nodeData) {
	all := insertSorted(u.keys, key)
	h := (len(all) + 1) / 2
	left = nodeData{leaf: true, keys: all[:h]}
	right = nodeData{leaf: true, keys: all[h:]}
	top = nodeData{flagged: !becomesRoot, keys: []uint64{all[h]}, ptrs: make([]core.Addr, 2)}
	return top, left, right
}

// planLeafDelete returns the replacement for removing key from leaf u.
func planLeafDelete(u nodeData, key uint64) nodeData {
	return nodeData{leaf: true, keys: removeKey(u.keys, key)}
}

// planRootUntag returns an unflagged copy of the root l (RootUntag: the
// child of the sentinel may not carry a flag violation; dropping the flag
// makes the extra level permanent, which is legal at the root).
func planRootUntag(l nodeData) nodeData {
	return nodeData{leaf: l.leaf, flagged: false, keys: l.keys, ptrs: l.ptrs}
}

// spliceChild returns p's contents with child l (at index li) replaced by
// l's own children and keys — the merged material used by AbsorbChild and
// PropagateFlag.
func spliceChild(p, l nodeData, li int) nodeData {
	out := nodeData{flagged: p.flagged}
	out.keys = append(out.keys, p.keys[:li]...)
	out.keys = append(out.keys, l.keys...)
	out.keys = append(out.keys, p.keys[li:]...)
	out.ptrs = append(out.ptrs, p.ptrs[:li]...)
	out.ptrs = append(out.ptrs, l.ptrs...)
	out.ptrs = append(out.ptrs, p.ptrs[li+1:]...)
	return out
}

// planAbsorbChild returns the replacement for p when flagged child l (at
// index li) fits entirely inside it: one node absorbing l's children,
// eliminating the flag violation.
func planAbsorbChild(p, l nodeData, li int) nodeData {
	return spliceChild(p, l, li)
}

// planPropagateFlag handles a flagged child l that does not fit into p:
// the merged material is split into two fresh internal nodes under a fresh
// parent, which carries the flag upward (unless it becomes the root). The
// top node's child slots are placeholders.
func planPropagateFlag(p, l nodeData, li int, becomesRoot bool) (top, left, right nodeData) {
	m := spliceChild(p, l, li)
	left, right, router := splitInternal(m)
	top = nodeData{flagged: !becomesRoot, keys: []uint64{router}, ptrs: make([]core.Addr, 2)}
	return top, left, right
}

// splitInternal splits an internal node's material into two halves and the
// router key that separates them.
func splitInternal(m nodeData) (left, right nodeData, router uint64) {
	c := len(m.ptrs)
	h := (c + 1) / 2
	left = nodeData{
		keys: append([]uint64(nil), m.keys[:h-1]...),
		ptrs: append([]core.Addr(nil), m.ptrs[:h]...),
	}
	right = nodeData{
		keys: append([]uint64(nil), m.keys[h:]...),
		ptrs: append([]core.Addr(nil), m.ptrs[h:]...),
	}
	return left, right, m.keys[h-1]
}

// mergeSiblings combines adjacent siblings left (child li of p) and right
// (child li+1), pulling down the router key between them for internal
// nodes.
func mergeSiblings(p, left, right nodeData, li int) nodeData {
	if left.leaf != right.leaf {
		panic("abtree: sibling kind mismatch (relaxed-level invariant broken)")
	}
	if left.leaf {
		keys := append(append([]uint64(nil), left.keys...), right.keys...)
		return nodeData{leaf: true, keys: keys}
	}
	keys := append([]uint64(nil), left.keys...)
	keys = append(keys, p.keys[li])
	keys = append(keys, right.keys...)
	ptrs := append(append([]core.Addr(nil), left.ptrs...), right.ptrs...)
	return nodeData{keys: keys, ptrs: ptrs}
}

// planAbsorbSibling returns p's replacement when the merged siblings fit in
// one node: p loses one child and one key. The merged node's slot in pNew
// (index li) is a placeholder the caller fills.
func planAbsorbSibling(p, left, right nodeData, li int) (pNew, merged nodeData) {
	merged = mergeSiblings(p, left, right, li)
	pNew = nodeData{flagged: p.flagged}
	pNew.keys = append(pNew.keys, p.keys[:li]...)
	pNew.keys = append(pNew.keys, p.keys[li+1:]...)
	pNew.ptrs = append(pNew.ptrs, p.ptrs[:li]...)
	pNew.ptrs = append(pNew.ptrs, core.NilAddr) // slot li: merged node
	pNew.ptrs = append(pNew.ptrs, p.ptrs[li+2:]...)
	return pNew, merged
}

// planDistribute returns p's replacement when the merged siblings overflow
// one node: their material is redistributed evenly into two fresh nodes and
// the router key in p updated. Child slots li and li+1 of pNew are
// placeholders.
func planDistribute(p, left, right nodeData, li int) (pNew, newLeft, newRight nodeData) {
	m := mergeSiblings(p, left, right, li)
	var router uint64
	if m.leaf {
		h := (len(m.keys) + 1) / 2
		newLeft = nodeData{leaf: true, keys: append([]uint64(nil), m.keys[:h]...)}
		newRight = nodeData{leaf: true, keys: append([]uint64(nil), m.keys[h:]...)}
		router = m.keys[h]
	} else {
		newLeft, newRight, router = splitInternal(m)
	}
	pNew = nodeData{
		flagged: p.flagged,
		keys:    append([]uint64(nil), p.keys...),
		ptrs:    append([]core.Addr(nil), p.ptrs...),
	}
	pNew.keys[li] = router
	pNew.ptrs[li] = core.NilAddr
	pNew.ptrs[li+1] = core.NilAddr
	return pNew, newLeft, newRight
}

func assertDegree(ly layout, nd nodeData, what string) {
	if nd.degree() > ly.b {
		panic(fmt.Sprintf("abtree: %s produced degree %d > b=%d", what, nd.degree(), ly.b))
	}
}
