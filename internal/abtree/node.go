// Package abtree implements the paper's relaxed (a,b)-tree (Section 5.1) in
// two synchronization flavours over simulated memory:
//
//   - LLX: the software baseline of Brown et al., where every structural
//     change is an SCX that freezes and finalizes the replaced nodes.
//   - HoH: the paper's hand-over-hand-tagged fast variant (Algorithms 3-5),
//     where searches tag a sliding window of three ancestors and every
//     structural change is a single invalidate-and-swap.
//
// The tree is leaf-oriented: all set keys live in leaves; internal nodes
// hold router keys. Balance is relaxed with two violation kinds (following
// Brown's (a,b)-tree): a *flag violation* at a flagged node (weight 0,
// created when a leaf or subtree splits) and a *degree violation* at a
// non-root node with fewer than a children/keys. Rebalancing steps
// (RootUntag, RootAbsorb, AbsorbChild, PropagateFlag, AbsorbSibling,
// Distribute) remove violations or move them up the search path; the
// invariant "all leaves have the same relaxed level" (levels not counting
// flagged ancestors) holds at every instant.
//
// Nodes are immutable except for their child-pointer array: every other
// change replaces a node with a fresh copy, exactly as in the paper. Both
// flavours share the node layout and the transformation planning code;
// they differ only in how a planned change is validated and committed.
package abtree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/llxscx"
)

// Node word layout. The first two words are the LLX/SCX header (unused by
// the HoH variant but kept so both variants are layout-identical).
const (
	fInfo   = llxscx.FInfo
	fMarked = llxscx.FMarked
	fMeta   = 2
	fKeys   = 3 // b key slots, then b child-pointer slots
)

// Meta word encoding.
const (
	metaLeaf    uint64 = 1 << 0
	metaFlagged uint64 = 1 << 1 // weight 0: a flag violation lives here
	metaCountSh        = 8
)

// layout carries the tree's (a,b) parameters and derives node geometry.
type layout struct {
	a, b int
}

func (ly layout) check() {
	if ly.a < 2 || ly.b < 2*ly.a-1 {
		panic(fmt.Sprintf("abtree: invalid parameters a=%d b=%d (need a>=2, b>=2a-1)", ly.a, ly.b))
	}
}

// nodeWords returns the node footprint in words.
func (ly layout) nodeWords() int { return fKeys + 2*ly.b }

// nodeBytes returns the node footprint in bytes (what AddTag covers).
func (ly layout) nodeBytes() int { return ly.nodeWords() * core.WordSize }

func (ly layout) keyAddr(n core.Addr, i int) core.Addr { return n.Plus(fKeys + i) }
func (ly layout) ptrAddr(n core.Addr, i int) core.Addr { return n.Plus(fKeys + ly.b + i) }

// mutOff/mutWords describe the mutable region (the child pointers) for LLX.
func (ly layout) mutOff() int   { return fKeys + ly.b }
func (ly layout) mutWords() int { return ly.b }

// nodeData is an in-Go copy of a node's contents, used to plan
// transformations before committing them to simulated memory.
type nodeData struct {
	leaf    bool
	flagged bool
	keys    []uint64
	ptrs    []core.Addr // internal: len(keys)+1 children; leaf: nil
}

// degree is the quantity bounded by [a, b]: children for internal nodes,
// keys for leaves.
func (nd *nodeData) degree() int {
	if nd.leaf {
		return len(nd.keys)
	}
	return len(nd.ptrs)
}

func packMeta(leaf, flagged bool, keyCount int) uint64 {
	m := uint64(keyCount) << metaCountSh
	if leaf {
		m |= metaLeaf
	}
	if flagged {
		m |= metaFlagged
	}
	return m
}

// readMeta decodes a node's meta word (immutable, so a plain load is always
// consistent).
func (ly layout) readMeta(th core.Thread, n core.Addr) (leaf, flagged bool, keyCount int) {
	m := th.Load(n.Plus(fMeta))
	return m&metaLeaf != 0, m&metaFlagged != 0, int(m >> metaCountSh)
}

// readNode loads a full node copy. Keys and meta are immutable; pointers
// are mutable, so the copy is only meaningful under the caller's
// synchronization (tags, LLX freeze, or quiescence).
func (ly layout) readNode(th core.Thread, n core.Addr) nodeData {
	leaf, flagged, kc := ly.readMeta(th, n)
	nd := nodeData{leaf: leaf, flagged: flagged, keys: make([]uint64, kc)}
	for i := 0; i < kc; i++ {
		nd.keys[i] = th.Load(ly.keyAddr(n, i))
	}
	if !leaf {
		nd.ptrs = make([]core.Addr, kc+1)
		for i := 0; i <= kc; i++ {
			nd.ptrs[i] = core.Addr(th.Load(ly.ptrAddr(n, i)))
		}
	}
	return nd
}

// writeNode allocates and initializes a fresh node from nd.
func (ly layout) writeNode(th core.Thread, nd nodeData) core.Addr {
	return ly.writeNodeAt(th, core.NilAddr, nd)
}

// writeNodeAt initializes a node from nd at n, allocating fresh when n is
// nil. Only the meta word, len(keys) key slots and len(ptrs) pointer slots
// are written: a recycled node keeps stale words beyond those counts, but
// no reader indexes past the counts in the meta word it loaded.
func (ly layout) writeNodeAt(th core.Thread, n core.Addr, nd nodeData) core.Addr {
	if len(nd.keys) > ly.b || (!nd.leaf && len(nd.ptrs) != len(nd.keys)+1) {
		panic(fmt.Sprintf("abtree: malformed node leaf=%v keys=%d ptrs=%d b=%d",
			nd.leaf, len(nd.keys), len(nd.ptrs), ly.b))
	}
	if n.IsNil() {
		n = th.Alloc(ly.nodeWords())
	}
	th.Store(n.Plus(fMeta), packMeta(nd.leaf, nd.flagged, len(nd.keys)))
	for i, k := range nd.keys {
		th.Store(ly.keyAddr(n, i), k)
	}
	for i, p := range nd.ptrs {
		th.Store(ly.ptrAddr(n, i), uint64(p))
	}
	return n
}

// childIndex returns which child of an internal node the search for key
// descends into: the subtree i covers keys in [keys[i-1], keys[i]).
func childIndex(keys []uint64, key uint64) int {
	i := 0
	for i < len(keys) && key >= keys[i] {
		i++
	}
	return i
}

// leafContains reports whether a leaf's key slice contains key.
func leafContains(keys []uint64, key uint64) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// insertSorted returns keys with key inserted in order.
func insertSorted(keys []uint64, key uint64) []uint64 {
	out := make([]uint64, 0, len(keys)+1)
	i := 0
	for i < len(keys) && keys[i] < key {
		out = append(out, keys[i])
		i++
	}
	out = append(out, key)
	out = append(out, keys[i:]...)
	return out
}

// removeKey returns keys without key.
func removeKey(keys []uint64, key uint64) []uint64 {
	out := make([]uint64, 0, len(keys))
	for _, k := range keys {
		if k != key {
			out = append(out, k)
		}
	}
	return out
}
