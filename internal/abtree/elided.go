package abtree

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/llxscx"
)

// Elided realizes the paper's headline composition (Sections 1, 5.1, 7):
// "MemTags can serve as a natural and efficient fast-path for marking and
// LLX/SCX-based implementations". It runs the hand-over-hand-tagged
// (a,b)-tree as the fast path and the LLX/SCX tree as the slow path — on
// the *same nodes* (both variants share the node layout, with the LLX/SCX
// info/marked header words reserved in every node).
//
// Safety of the composition:
//
//   - Fast-path commits only while no slow operation is in flight: every
//     fast IAS tags the counting Mode line (core.Fallback), so a slow
//     entry invalidates all in-flight fast commits, and BeginFast refuses
//     while the count is non-zero. This keeps IAS from landing inside an
//     SCX's freeze/finalize/swing sequence.
//   - Slow-path SCXs remain visible to the fast path's reachability
//     invariant because freezing writes every dependency's info word —
//     which invalidates the line at every core holding a tag on it,
//     exactly like the fast path's own IAS transient marking.
//   - Nodes created on either path look quiescent to the other (fresh
//     nodes have info = 0 and marked = 0).
type Elided struct {
	hoh *HoHTree
	llx *LLXTree
	fb  *core.Fallback

	// FastCommits / SlowCommits count where updates completed.
	FastCommits atomic.Uint64
	SlowCommits atomic.Uint64
}

var _ intset.Set = (*Elided)(nil)

// NewElided creates an empty tree with parameters a, b; threshold is the
// number of fast-path attempts per operation before falling back (0
// selects the default).
func NewElided(mem core.Memory, a, b, threshold int) *Elided {
	hoh := NewHoH(mem, a, b)
	llx := &LLXTree{
		ly:       hoh.ly,
		mem:      mem,
		mgr:      llxscx.New(mem),
		sentinel: hoh.sentinel, // both paths operate on the same tree
	}
	fb := core.NewFallback(mem)
	if threshold > 0 {
		fb.Threshold = threshold
	}
	return &Elided{hoh: hoh, llx: llx, fb: fb}
}

// guard joins the Mode line to the current tag set and checks no slow
// operation is in flight, so the attempt's IAS validates the mode together
// with the data window.
func (e *Elided) guard(th core.Thread) func() bool {
	return func() bool {
		if !th.AddTag(e.fb.ModeAddr(), core.WordSize) {
			return false
		}
		return th.Load(e.fb.ModeAddr()) == core.ModeFast
	}
}

func (e *Elided) update(th core.Thread,
	fast func(guard func() bool) (done, result, needCleanup bool),
	slow func() bool,
	key uint64) bool {

	g := e.guard(th)
	for attempt := 0; attempt < e.fb.Threshold; attempt++ {
		if th.Load(e.fb.ModeAddr()) != core.ModeFast {
			break
		}
		if done, result, needCleanup := fast(g); done {
			e.FastCommits.Add(1)
			if needCleanup {
				e.cleanup(th, key, g)
			}
			return result
		}
	}
	e.fb.EnterSlow(th)
	result := slow()
	e.fb.ExitSlow(th)
	e.SlowCommits.Add(1)
	return result
}

// cleanup removes the balance violations an update may have created,
// preferring guarded fast-path fixes and falling back to the LLX/SCX
// rebalancer when they keep failing.
func (e *Elided) cleanup(th core.Thread, key uint64, g func() bool) {
	for attempt := 0; attempt < 4*e.fb.Threshold; attempt++ {
		if th.Load(e.fb.ModeAddr()) != core.ModeFast {
			break
		}
		if e.hoh.cleanupPass(th, key, g) {
			return
		}
	}
	e.fb.EnterSlow(th)
	e.llx.cleanup(th, key)
	e.fb.ExitSlow(th)
}

// Insert adds key, reporting whether it was absent.
func (e *Elided) Insert(th core.Thread, key uint64) bool {
	return e.update(th,
		func(g func() bool) (bool, bool, bool) { return e.hoh.insertOnce(th, key, g) },
		func() bool { return e.llx.Insert(th, key) },
		key)
}

// Delete removes key, reporting whether it was present.
func (e *Elided) Delete(th core.Thread, key uint64) bool {
	return e.update(th,
		func(g func() bool) (bool, bool, bool) { return e.hoh.deleteOnce(th, key, g) },
		func() bool { return e.llx.Delete(th, key) },
		key)
}

// Contains reports whether key is present. The fast search needs no mode
// check for correctness (it commits nothing; its linearization comes from
// tag validation, which slow-path writes invalidate like any others), but
// it falls back to the plain LLX/SCX search when the tagged traversal
// keeps restarting (tags are advisory; searches too need a fallback for
// progress).
func (e *Elided) Contains(th core.Thread, key uint64) bool {
	_, _, l, _, _, ok := e.hoh.locateBounded(th, key, locateRestartBudget)
	if ok {
		_, _, kc := e.hoh.ly.readMeta(th, l)
		found := false
		for i := 0; i < kc; i++ {
			if th.Load(e.hoh.ly.keyAddr(l, i)) == key {
				found = true
				break
			}
		}
		th.ClearTagSet()
		return found
	}
	return e.llx.Contains(th, key)
}

// Keys enumerates the set while quiescent.
func (e *Elided) Keys(th core.Thread) []uint64 { return e.hoh.Keys(th) }

// Root returns the shared sentinel (for invariant checks).
func (e *Elided) Root() core.Addr { return e.hoh.sentinel }

// Layout returns the (a,b) parameters (for invariant checks).
func (e *Elided) Layout() (a, b int) { return e.hoh.ly.a, e.hoh.ly.b }

// ModeAddr exposes the Mode line for tests.
func (e *Elided) ModeAddr() core.Addr { return e.fb.ModeAddr() }
