// Package llxscx implements the load-link-extended / store-conditional-
// extended / validate-extended primitives of Brown, Ellen and Ruppert
// ("Pragmatic primitives for non-blocking data structures", PODC 2013) over
// simulated memory. They are the software baseline the paper's tagged
// (a,b)-tree is measured against, and a correct fallback path for tagged
// data structures.
//
// A Data-record is any object in simulated memory that reserves two header
// words: an info pointer (to the SCX-record of the last SCX that froze it)
// and a marked flag (finalization). Mutable fields live in a contiguous
// region of the record; immutable fields may be read directly at any time.
//
// An SCX-record (descriptor) lives in simulated memory as well, so helping
// threads coordinate exclusively through the simulated coherence protocol —
// faithfully reproducing the synchronization cost the paper attributes to
// LLX/SCX ("marking each node prior to its removal... and a sort of
// collaborative operation-locking protocol").
package llxscx

import (
	"repro/internal/core"
)

// Data-record header offsets (in words, from the record base).
const (
	FInfo   = 0 // SCX-record pointer that last froze this record (0 = none)
	FMarked = 1 // non-zero once the record is finalized
	// HeaderWords is the number of words a Data-record must reserve at its
	// base for LLX/SCX state.
	HeaderWords = 2
)

// SCX-record states.
const (
	stInProgress uint64 = 0
	stCommitted  uint64 = 1
	stAborted    uint64 = 2
)

// MaxV is the maximum number of Data-records one SCX may depend on.
const MaxV = 5

// SCX-record layout (in words).
const (
	dState     = 0
	dAllFrozen = 1
	dFld       = 2
	dOld       = 3
	dNew       = 4
	dNumV      = 5
	dEntries   = 6 // numV entries of entryWords each
	entryWords = 3 // record address, expected info, finalize flag
	descWords  = dEntries + MaxV*entryWords
)

// LLXStatus is the outcome of an LLX.
type LLXStatus int

const (
	// LLXSuccess: the record was unfrozen and unmarked; the snapshot and
	// info value are valid.
	LLXSuccess LLXStatus = iota
	// LLXFinalized: the record is finalized (removed from the structure).
	LLXFinalized
	// LLXFail: a conflicting SCX was in progress (it has been helped).
	LLXFail
)

// Manager issues LLX/SCX operations against one simulated memory.
type Manager struct {
	mem core.Memory
}

// New creates a manager.
func New(mem core.Memory) *Manager { return &Manager{mem: mem} }

// stateOf reads the state of the SCX-record referenced by an info value;
// a zero info pointer denotes a committed (quiescent) record.
func (g *Manager) stateOf(th core.Thread, info uint64) uint64 {
	if info == 0 {
		return stCommitted
	}
	return th.Load(core.Addr(info).Plus(dState))
}

// LLX performs a load-link-extended on the record at rec. On success it
// copies mutWords words starting at mutOff (the record's mutable region)
// into snap (which must have length >= mutWords) and returns the observed
// info value to pass to a later SCX or VLX.
func (g *Manager) LLX(th core.Thread, rec core.Addr, mutOff, mutWords int, snap []uint64) (info uint64, status LLXStatus) {
	marked := th.Load(rec.Plus(FMarked)) != 0
	info = th.Load(rec.Plus(FInfo))
	state := g.stateOf(th, info)

	if state == stAborted || (state == stCommitted && !marked) {
		for i := 0; i < mutWords; i++ {
			snap[i] = th.Load(rec.Plus(mutOff + i))
		}
		if th.Load(rec.Plus(FInfo)) == info {
			// Re-read the marked flag now that info and state are known
			// (Brown et al.'s second marked read). The first read can be
			// stale: a finalizing SCX marks its records *before* moving to
			// Committed, so the interleaving "read marked=0; SCX marks and
			// commits; read state=Committed" would otherwise return
			// success on a finalized record — whose frozen info never
			// changes again, making the stale success repeatable and
			// wedging every operation that reaches the record.
			if th.Load(rec.Plus(FMarked)) != 0 {
				return 0, LLXFinalized
			}
			return info, LLXSuccess
		}
	}
	// A conflicting SCX holds (or held) the record frozen: help it along,
	// then report the conflict.
	if state == stInProgress {
		g.help(th, core.Addr(info))
	}
	if marked {
		return 0, LLXFinalized
	}
	return 0, LLXFail
}

// VLX validates that each record still has the info value returned by the
// caller's earlier LLX (no SCX has frozen it since).
func (g *Manager) VLX(th core.Thread, recs []core.Addr, infos []uint64) bool {
	for i, r := range recs {
		if th.Load(r.Plus(FInfo)) != infos[i] {
			return false
		}
		if th.Load(r.Plus(FMarked)) != 0 {
			return false
		}
	}
	return true
}

// SCX atomically: verifies that no record in deps changed since the
// caller's LLX on it (infos are the LLX return values), finalizes the
// records whose finalize flag is set, and stores new into the word at fld
// (whose current value must be old; fld must be a mutable field of one of
// the dependencies). It reports whether the operation committed.
//
// new must differ from old (node replacements always install fresh
// addresses, so this holds by construction).
func (g *Manager) SCX(th core.Thread, deps []core.Addr, infos []uint64, finalize []bool, fld core.Addr, old, new uint64) bool {
	if len(deps) == 0 || len(deps) > MaxV {
		panic("llxscx: SCX dependency count out of range")
	}
	if old == new {
		panic("llxscx: SCX old == new")
	}
	desc := th.Alloc(descWords)
	th.Store(desc.Plus(dState), stInProgress)
	th.Store(desc.Plus(dAllFrozen), 0)
	th.Store(desc.Plus(dFld), uint64(fld))
	th.Store(desc.Plus(dOld), old)
	th.Store(desc.Plus(dNew), new)
	th.Store(desc.Plus(dNumV), uint64(len(deps)))
	for i, r := range deps {
		base := dEntries + i*entryWords
		th.Store(desc.Plus(base+0), uint64(r))
		th.Store(desc.Plus(base+1), infos[i])
		fin := uint64(0)
		if finalize[i] {
			fin = 1
		}
		th.Store(desc.Plus(base+2), fin)
	}
	return g.help(th, desc)
}

// help drives the SCX-record at desc to completion (freeze all, finalize
// subset, swing the field, commit — or abort). Any thread may help; all
// steps are idempotent.
func (g *Manager) help(th core.Thread, desc core.Addr) bool {
	numV := int(th.Load(desc.Plus(dNumV)))
	for i := 0; i < numV; i++ {
		base := dEntries + i*entryWords
		rec := core.Addr(th.Load(desc.Plus(base + 0)))
		exp := th.Load(desc.Plus(base + 1))
		th.CAS(rec.Plus(FInfo), exp, uint64(desc))
		if th.Load(rec.Plus(FInfo)) != uint64(desc) {
			// Failed to freeze rec. If the operation already reached the
			// all-frozen point it is destined to commit; otherwise abort.
			if th.Load(desc.Plus(dAllFrozen)) == 0 {
				th.CAS(desc.Plus(dState), stInProgress, stAborted)
				return th.Load(desc.Plus(dState)) == stCommitted
			}
			break
		}
	}
	th.Store(desc.Plus(dAllFrozen), 1)
	for i := 0; i < numV; i++ {
		base := dEntries + i*entryWords
		if th.Load(desc.Plus(base+2)) != 0 {
			rec := core.Addr(th.Load(desc.Plus(base + 0)))
			th.Store(rec.Plus(FMarked), 1)
		}
	}
	fld := core.Addr(th.Load(desc.Plus(dFld)))
	th.CAS(fld, th.Load(desc.Plus(dOld)), th.Load(desc.Plus(dNew)))
	th.CAS(desc.Plus(dState), stInProgress, stCommitted)
	return th.Load(desc.Plus(dState)) == stCommitted
}
