package llxscx

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vtags"
)

// A test record: 2 header words + 2 mutable words.
const (
	recMut   = HeaderWords
	recWords = HeaderWords + 2
)

func newRec(th core.Thread, v0, v1 uint64) core.Addr {
	r := th.Alloc(recWords)
	th.Store(r.Plus(recMut), v0)
	th.Store(r.Plus(recMut+1), v1)
	return r
}

func TestLLXSnapshotAndSCX(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	r := newRec(th, 10, 20)

	snap := make([]uint64, 2)
	info, st := g.LLX(th, r, recMut, 2, snap)
	if st != LLXSuccess {
		t.Fatalf("LLX status = %v", st)
	}
	if snap[0] != 10 || snap[1] != 20 {
		t.Fatalf("snapshot = %v", snap)
	}
	ok := g.SCX(th, []core.Addr{r}, []uint64{info}, []bool{false}, r.Plus(recMut), 10, 11)
	if !ok {
		t.Fatal("uncontended SCX failed")
	}
	if th.Load(r.Plus(recMut)) != 11 {
		t.Fatal("SCX did not write")
	}
}

func TestSCXFailsOnStaleInfo(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	r := newRec(th, 1, 2)
	snap := make([]uint64, 2)
	info, _ := g.LLX(th, r, recMut, 2, snap)

	// A successful SCX invalidates the earlier link.
	if !g.SCX(th, []core.Addr{r}, []uint64{info}, []bool{false}, r.Plus(recMut), 1, 5) {
		t.Fatal("first SCX failed")
	}
	if g.SCX(th, []core.Addr{r}, []uint64{info}, []bool{false}, r.Plus(recMut), 5, 9) {
		t.Fatal("SCX with stale info succeeded")
	}
	if th.Load(r.Plus(recMut)) != 5 {
		t.Fatal("stale SCX wrote")
	}
}

func TestFinalizedRecordRejectsLLXAndSCX(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	r := newRec(th, 1, 2)
	snap := make([]uint64, 2)
	info, _ := g.LLX(th, r, recMut, 2, snap)
	if !g.SCX(th, []core.Addr{r}, []uint64{info}, []bool{true}, r.Plus(recMut), 1, 3) {
		t.Fatal("finalizing SCX failed")
	}
	if _, st := g.LLX(th, r, recMut, 2, snap); st != LLXFinalized {
		t.Fatalf("LLX on finalized record = %v, want LLXFinalized", st)
	}
}

func TestVLX(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	r1 := newRec(th, 1, 0)
	r2 := newRec(th, 2, 0)
	snap := make([]uint64, 2)
	i1, _ := g.LLX(th, r1, recMut, 2, snap)
	i2, _ := g.LLX(th, r2, recMut, 2, snap)
	if !g.VLX(th, []core.Addr{r1, r2}, []uint64{i1, i2}) {
		t.Fatal("VLX failed without conflict")
	}
	if !g.SCX(th, []core.Addr{r2}, []uint64{i2}, []bool{false}, r2.Plus(recMut), 2, 7) {
		t.Fatal("SCX failed")
	}
	if g.VLX(th, []core.Addr{r1, r2}, []uint64{i1, i2}) {
		t.Fatal("VLX succeeded after conflicting SCX")
	}
}

func TestSCXMultiRecordAtomicity(t *testing.T) {
	// Two records; SCX depends on both. A change to the *other* record
	// between LLX and SCX must abort the SCX.
	mem := vtags.New(1<<20, 1)
	g := New(mem)
	th := mem.Thread(0)
	r1 := newRec(th, 1, 0)
	r2 := newRec(th, 2, 0)
	snap := make([]uint64, 2)
	i1, _ := g.LLX(th, r1, recMut, 2, snap)
	i2, _ := g.LLX(th, r2, recMut, 2, snap)

	// Interfering SCX on r2 alone.
	if !g.SCX(th, []core.Addr{r2}, []uint64{i2}, []bool{false}, r2.Plus(recMut), 2, 3) {
		t.Fatal("interfering SCX failed")
	}
	if g.SCX(th, []core.Addr{r1, r2}, []uint64{i1, i2}, []bool{false, false}, r1.Plus(recMut), 1, 4) {
		t.Fatal("SCX committed despite changed dependency")
	}
	if th.Load(r1.Plus(recMut)) != 1 {
		t.Fatal("aborted SCX wrote")
	}
}

// Concurrent counter via LLX/SCX: total must be exact.
func TestConcurrentSCXCounter(t *testing.T) {
	const workers, per = 8, 300
	mem := vtags.New(8<<20, workers)
	g := New(mem)
	r := newRec(mem.Thread(0), 0, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			snap := make([]uint64, 2)
			for i := 0; i < per; i++ {
				for {
					info, st := g.LLX(th, r, recMut, 2, snap)
					if st != LLXSuccess {
						continue
					}
					if g.SCX(th, []core.Addr{r}, []uint64{info}, []bool{false}, r.Plus(recMut), snap[0], snap[0]+1) {
						break
					}
				}
			}
		}(mem.Thread(w))
	}
	wg.Wait()
	if got := mem.Thread(0).Load(r.Plus(recMut)); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// Concurrent two-record transfers preserve the sum (multi-record SCX
// atomicity under contention).
func TestConcurrentSCXTransfers(t *testing.T) {
	const workers, per = 6, 200
	mem := vtags.New(8<<20, workers)
	g := New(mem)
	th0 := mem.Thread(0)
	r1 := newRec(th0, 1000, 0)
	r2 := newRec(th0, 1000, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread, w int) {
			defer wg.Done()
			snap1 := make([]uint64, 2)
			snap2 := make([]uint64, 2)
			src, dst := r1, r2
			if w%2 == 1 {
				src, dst = r2, r1
			}
			for i := 0; i < per; i++ {
				for {
					is, st := g.LLX(th, src, recMut, 2, snap1)
					if st != LLXSuccess {
						continue
					}
					id, st := g.LLX(th, dst, recMut, 2, snap2)
					if st != LLXSuccess {
						continue
					}
					// Move one unit src -> dst, writing only src; dst's
					// balance is implied (we validate it was unchanged and
					// rewrite src to old-1... to keep a single-field write,
					// encode the transfer as src -= 1 only when dst
					// unchanged; the sum check still catches lost updates).
					if g.SCX(th, []core.Addr{src, dst}, []uint64{is, id}, []bool{false, false},
						src.Plus(recMut), snap1[0], snap1[0]-1) {
						break
					}
				}
			}
		}(mem.Thread(w), w)
	}
	wg.Wait()
	got := th0.Load(r1.Plus(recMut)) + th0.Load(r2.Plus(recMut))
	want := uint64(2000 - workers*per)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}
