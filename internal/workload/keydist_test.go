package workload

import (
	"math/rand"
	"testing"

	"repro/internal/intset"
)

func drawSeq(t *testing.T, cfg Config, seed int64, n int) []uint64 {
	t.Helper()
	cfg.Seed = seed
	make1 := newKeyDraw(&cfg)
	draw := make1(rand.New(rand.NewSource(seed)))
	seq := make([]uint64, n)
	for i := range seq {
		seq[i] = draw()
		if seq[i] < intset.KeyMin || seq[i] >= intset.KeyMin+cfg.KeyRange {
			t.Fatalf("%v draw %d = %d outside [%d, %d)",
				cfg.Dist, i, seq[i], intset.KeyMin, intset.KeyMin+cfg.KeyRange)
		}
	}
	return seq
}

// TestKeyDistUniformMatchesLegacy pins the compatibility contract: the
// uniform sampler must reproduce the pre-KeyDist draw expression bit for
// bit from the same rng, so every recorded baseline and golden history
// stays valid.
func TestKeyDistUniformMatchesLegacy(t *testing.T) {
	const keyRange, n, seed = 2048, 4096, 99
	got := drawSeq(t, Config{KeyRange: keyRange}, seed, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		want := intset.KeyMin + uint64(rng.Int63n(int64(keyRange)))
		if got[i] != want {
			t.Fatalf("uniform draw %d = %d, legacy expression yields %d", i, got[i], want)
		}
	}
}

// TestKeyDistDeterminism checks, for every distribution, that the same
// seed reproduces the same draw sequence and a different seed does not.
func TestKeyDistDeterminism(t *testing.T) {
	for _, d := range []KeyDist{DistUniform, DistZipfian, DistHotSet} {
		cfg := Config{KeyRange: 1 << 12, Dist: d}
		a := drawSeq(t, cfg, 7, 2000)
		b := drawSeq(t, cfg, 7, 2000)
		c := drawSeq(t, cfg, 8, 2000)
		same, diff := true, false
		for i := range a {
			same = same && a[i] == b[i]
			diff = diff || a[i] != c[i]
		}
		if !same {
			t.Fatalf("%v: identical seeds produced different sequences", d)
		}
		if !diff {
			t.Fatalf("%v: distinct seeds produced identical sequences", d)
		}
	}
}

// TestScatterIsBijection checks the rank scatterer really permutes
// [0, n): the rank distribution must be relocated exactly, not hashed
// with collisions.
func TestScatterIsBijection(t *testing.T) {
	for _, n := range []uint64{2, 3, 64, 100, 2048, 3000} {
		scatter := scatterFor(n)
		seen := make(map[uint64]bool, n)
		for r := uint64(0); r < n; r++ {
			k := scatter(r)
			if k >= n {
				t.Fatalf("n=%d: scatter(%d) = %d out of range", n, r, k)
			}
			if seen[k] {
				t.Fatalf("n=%d: scatter collision at %d", n, k)
			}
			seen[k] = true
		}
	}
}

// TestZipfianSkew checks the Zipfian sampler is heavily skewed: with
// theta 0.99 the hottest 1% of keys should draw far more than their
// uniform share (empirically ~35% at this range; uniform would give 1%).
func TestZipfianSkew(t *testing.T) {
	const keyRange, n = 1000, 200_000
	seq := drawSeq(t, Config{KeyRange: keyRange, Dist: DistZipfian}, 5, n)
	counts := map[uint64]int{}
	for _, k := range seq {
		counts[k]++
	}
	// Take the top 1% of keys by observed traffic.
	top := 0
	for i := 0; i < keyRange/100; i++ {
		var bestK uint64
		best := -1
		for k, c := range counts {
			if c > best {
				bestK, best = k, c
			}
		}
		top += best
		delete(counts, bestK)
	}
	if frac := float64(top) / n; frac < 0.15 {
		t.Fatalf("top 1%% of keys drew only %.1f%% of Zipfian traffic, want >= 15%%", frac*100)
	}
}

// TestHotSetSkew checks the hot-set sampler's contract directly: with the
// 10/90 defaults the 10% hottest keys must carry about 90% of the draws.
func TestHotSetSkew(t *testing.T) {
	const keyRange, n = 1000, 200_000
	seq := drawSeq(t, Config{KeyRange: keyRange, Dist: DistHotSet}, 5, n)
	counts := map[uint64]int{}
	for _, k := range seq {
		counts[k]++
	}
	hot := 0
	for i := 0; i < keyRange/10; i++ {
		var bestK uint64
		best := -1
		for k, c := range counts {
			if c > best {
				bestK, best = k, c
			}
		}
		hot += best
		delete(counts, bestK)
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot 10%% of keys drew %.1f%% of traffic, want ~90%%", frac*100)
	}
}

// TestParseKeyDist covers the CLI spellings and the error path.
func TestParseKeyDist(t *testing.T) {
	cases := map[string]KeyDist{
		"uniform": DistUniform, "": DistUniform,
		"zipfian": DistZipfian, "zipf": DistZipfian,
		"hotset": DistHotSet, "hot-set": DistHotSet,
	}
	for s, want := range cases {
		got, err := ParseKeyDist(s)
		if err != nil || got != want {
			t.Fatalf("ParseKeyDist(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() == "" {
			t.Fatalf("%v has empty String()", got)
		}
	}
	if _, err := ParseKeyDist("gaussian"); err == nil {
		t.Fatal("ParseKeyDist accepted an unknown distribution")
	}
}
