// Package workload generates the paper's standard search-data-structure
// workloads (Section 6): every thread draws random keys from a fixed
// range and performs a mix of inserts, deletes and searches; the
// structure is prefilled to half the key range so its size stays roughly
// constant and about half of the updates return false. Keys are uniform
// by default; Config.Dist switches the measured phase to a Zipfian or
// hot-set distribution for skewed-traffic experiments.
package workload

import (
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/intset"
	"repro/internal/telemetry"
)

// Mix is an operation mix in percent; the remainder are searches.
type Mix struct {
	InsertPct int
	DeletePct int
}

// Update3535 is the paper's high-update workload: 35% inserts, 35%
// deletes, 30% searches.
var Update3535 = Mix{InsertPct: 35, DeletePct: 35}

// Update1515 is the paper's moderate workload: 15% inserts, 15% deletes,
// 70% searches.
var Update1515 = Mix{InsertPct: 15, DeletePct: 15}

// Config describes one run.
type Config struct {
	Threads      int
	KeyRange     uint64 // keys drawn from [KeyMin, KeyMin+KeyRange)
	PrefillSize  int    // initial structure size (typically KeyRange/2)
	OpsPerThread int
	Mix          Mix
	Seed         int64

	// Dist selects the key distribution for the measured phase's draws
	// (Prefill stays uniform). The zero value, DistUniform, reproduces
	// the paper's workload bit for bit. HotKeysPct/HotTrafficPct shape
	// DistHotSet (defaults 10/90); ZipfTheta shapes DistZipfian
	// (default 0.99).
	Dist          KeyDist
	HotKeysPct    int
	HotTrafficPct int
	ZipfTheta     float64

	// History, when non-nil, records every operation's invocation and
	// response (worker w uses shard w; Prefill records on shard 0) so the
	// run can be checked with internal/linearizability. It must have at
	// least Threads shards. Recording costs one slice append and two
	// atomic increments per operation; leave it nil for measured runs.
	History *history.Recorder

	// Telemetry, when non-nil, receives per-op latency (backend clock
	// delta across the operation) and retries (failure-count delta) into
	// core w's histograms. Requires the backend threads to implement
	// OpClock (both backends do). Recording is allocation-free.
	Telemetry *telemetry.Set
	// Sampler, when non-nil, is enrolled at phase start and ticked once
	// per completed operation, producing the run's time-series windows.
	Sampler *telemetry.Sampler
	// Stream, when non-nil, is ticked once per completed operation with
	// the backend clock, the op's clock delta and its failure delta —
	// unlike Sampler its windows are readable mid-run (seqlock protocol).
	// Allocation-free; requires OpClock like Telemetry.
	Stream *telemetry.Stream
	// Trace, when non-nil, receives one op span per structure operation
	// for the Perfetto export. Unlike Telemetry/Sampler this allocates
	// (growing buffers); leave nil for measured runs.
	Trace *telemetry.TraceCollector
}

// opClocked is implemented by both backends' threads: the backend clock
// (simulated cycles on the machine, logical ticks on vtags) and the
// cumulative validation/commit failure count, diffed across each op.
type opClocked interface{ OpClock() (clock, fails uint64) }

// opName names an op code for trace spans.
func opName(op uint8) string {
	switch op {
	case history.OpInsert:
		return "Insert"
	case history.OpDelete:
		return "Delete"
	default:
		return "Contains"
	}
}

// activatable is implemented by machine threads supporting lax clock
// synchronization; the workload enrols its workers so simulated-core
// interleaving scales with simulated time.
type activatable interface{ SetActive(bool) }

// epochAligner is implemented by the machine backend: clocks are aligned
// before a measured parallel phase.
type epochAligner interface{ BeginEpoch() }

// Counts aggregates what the threads did.
type Counts struct {
	Ops       uint64
	Inserts   uint64 // successful inserts
	Deletes   uint64 // successful deletes
	Hits      uint64 // successful searches
	TotalFill int    // keys prefilled
}

// Prefill populates the structure with cfg.PrefillSize distinct random
// keys using thread 0. With cfg.History set, every insert attempt
// (including duplicates that return false) is recorded on shard 0; the key
// sequence is identical to the unrecorded path.
func Prefill(mem core.Memory, s intset.Set, cfg Config) Counts {
	if cfg.History == nil {
		keys := intset.Prefill(mem.Thread(0), s, cfg.PrefillSize, cfg.KeyRange, cfg.Seed)
		return Counts{TotalFill: len(keys)}
	}
	th := mem.Thread(0)
	sh := cfg.History.Shard(0)
	rng := rand.New(rand.NewSource(cfg.Seed))
	filled := 0
	for filled < cfg.PrefillSize {
		k := intset.KeyMin + uint64(rng.Int63n(int64(cfg.KeyRange)))
		idx := sh.Begin(history.OpInsert, k, 0)
		ok := s.Insert(th, k)
		sh.End(idx, ok, 0)
		if ok {
			filled++
		}
	}
	return Counts{TotalFill: filled}
}

// Run executes the workload with one goroutine per thread and returns the
// aggregated counts. The caller is responsible for prefilling and for
// snapshotting machine statistics before/after.
func Run(mem core.Memory, s intset.Set, cfg Config) Counts {
	results := make([]Counts, cfg.Threads)
	if be, ok := mem.(epochAligner); ok {
		be.BeginEpoch()
	}
	// All workers enrol in lax clock synchronization before any of them
	// issues an operation, so no thread can race ahead while others have
	// not yet been scheduled (critical on hosts with few CPUs).
	var ready, wg sync.WaitGroup
	start := make(chan struct{})
	ready.Add(cfg.Threads)
	makeDraw := newKeyDraw(&cfg)
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			if a, ok := th.(activatable); ok {
				a.SetActive(true)
				defer a.SetActive(false)
			}
			ready.Done()
			<-start
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
			draw := makeDraw(rng)
			var sh *history.Shard
			if cfg.History != nil {
				sh = cfg.History.Shard(w)
			}
			// Per-op telemetry reads the backend clock around each op.
			var oc opClocked
			if cfg.Telemetry != nil || cfg.Sampler != nil || cfg.Trace != nil || cfg.Stream != nil {
				oc, _ = th.(opClocked)
			}
			var tel *telemetry.Core
			if cfg.Telemetry != nil && oc != nil {
				tel = cfg.Telemetry.Core(w)
			}
			if cfg.Sampler != nil && oc != nil {
				c0, f0 := oc.OpClock()
				cfg.Sampler.Enroll(w, c0, f0)
			}
			// do runs one structure operation, recorded when a history
			// shard or telemetry is attached.
			do := func(op uint8, k uint64, exec func() bool) bool {
				var c0, f0 uint64
				if oc != nil {
					c0, f0 = oc.OpClock()
				}
				var ok bool
				if sh == nil {
					ok = exec()
				} else {
					idx := sh.Begin(op, k, 0)
					ok = exec()
					sh.End(idx, ok, 0)
				}
				if oc != nil {
					c1, f1 := oc.OpClock()
					if tel != nil {
						tel.OpLatency.Observe(c1 - c0)
						tel.OpRetries.Observe(f1 - f0)
					}
					if cfg.Sampler != nil {
						cfg.Sampler.Tick(w, c1, f1)
					}
					if cfg.Stream != nil {
						cfg.Stream.Tick(w, c1, c1-c0, f1-f0)
					}
					if cfg.Trace != nil {
						cfg.Trace.OpSpan(w, opName(op), c0, c1)
					}
				}
				return ok
			}
			c := &results[w]
			for i := 0; i < cfg.OpsPerThread; i++ {
				k := draw()
				op := rng.Intn(100)
				switch {
				case op < cfg.Mix.InsertPct:
					if do(history.OpInsert, k, func() bool { return s.Insert(th, k) }) {
						c.Inserts++
					}
				case op < cfg.Mix.InsertPct+cfg.Mix.DeletePct:
					if do(history.OpDelete, k, func() bool { return s.Delete(th, k) }) {
						c.Deletes++
					}
				default:
					if do(history.OpContains, k, func() bool { return s.Contains(th, k) }) {
						c.Hits++
					}
				}
				c.Ops++
			}
		}(w)
	}
	ready.Wait()
	close(start)
	wg.Wait()
	var total Counts
	for _, c := range results {
		total.Ops += c.Ops
		total.Inserts += c.Inserts
		total.Deletes += c.Deletes
		total.Hits += c.Hits
	}
	return total
}
