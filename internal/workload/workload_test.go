package workload

import (
	"testing"

	"repro/internal/intset"
	"repro/internal/list"
	"repro/internal/vtags"
)

func TestPrefillSize(t *testing.T) {
	mem := vtags.New(8<<20, 1)
	s := list.NewHoH(mem)
	cfg := Config{Threads: 1, KeyRange: 256, PrefillSize: 128, Seed: 1}
	c := Prefill(mem, s, cfg)
	if c.TotalFill != 128 {
		t.Fatalf("prefilled %d, want 128", c.TotalFill)
	}
	keys := s.Keys(mem.Thread(0))
	if len(keys) != 128 {
		t.Fatalf("structure has %d keys, want 128", len(keys))
	}
}

func TestRunCountsAndDeterminism(t *testing.T) {
	run := func() Counts {
		mem := vtags.New(8<<20, 2)
		s := list.NewHoH(mem)
		cfg := Config{
			Threads: 2, KeyRange: 128, PrefillSize: 64,
			OpsPerThread: 300, Mix: Update3535, Seed: 9,
		}
		Prefill(mem, s, cfg)
		return Run(mem, s, cfg)
	}
	c := run()
	if c.Ops != 600 {
		t.Fatalf("ops = %d, want 600", c.Ops)
	}
	if c.Inserts == 0 || c.Deletes == 0 || c.Hits == 0 {
		t.Fatalf("degenerate counts: %+v", c)
	}
	// The structure size stays roughly constant: successful inserts and
	// deletes should be within a factor of ~2 of each other.
	if c.Inserts > 3*c.Deletes+50 || c.Deletes > 3*c.Inserts+50 {
		t.Fatalf("unbalanced updates: %+v", c)
	}
}

func TestRunSingleThreadMatchesReference(t *testing.T) {
	// With one thread the op outcomes must be reproducible across backends
	// and structures; verify final membership parity per key.
	mem := vtags.New(8<<20, 1)
	s := list.NewHarris(mem)
	cfg := Config{Threads: 1, KeyRange: 64, PrefillSize: 32, OpsPerThread: 500, Mix: Update3535, Seed: 5}
	Prefill(mem, s, cfg)
	c := Run(mem, s, cfg)
	net := int(c.Inserts) - int(c.Deletes)
	keys := s.Keys(mem.Thread(0))
	if len(keys) != 32+net {
		t.Fatalf("final size %d, want %d", len(keys), 32+net)
	}
}

func TestMixBoundaries(t *testing.T) {
	// A 100% insert mix only inserts; a 0/0 mix only searches.
	mem := vtags.New(8<<20, 1)
	s := list.NewHoH(mem)
	cfg := Config{Threads: 1, KeyRange: 1 << 30, PrefillSize: 4, OpsPerThread: 100,
		Mix: Mix{InsertPct: 100}, Seed: 3}
	Prefill(mem, s, cfg)
	c := Run(mem, s, cfg)
	if c.Deletes != 0 || c.Hits != 0 {
		t.Fatalf("pure-insert mix performed other ops: %+v", c)
	}
	if c.Inserts < 95 { // huge key range: collisions vanishingly rare
		t.Fatalf("inserts = %d, want ~100", c.Inserts)
	}

	cfg.Mix = Mix{}
	before := s.Keys(mem.Thread(0))
	Run(mem, s, cfg)
	after := s.Keys(mem.Thread(0))
	if len(before) != len(after) {
		t.Fatal("search-only mix changed the structure")
	}
	_ = intset.KeyMin
}
