package workload

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/intset"
)

// KeyDist selects the key distribution for Run's operation key draws.
// Prefill always draws uniformly: the structure's initial content should
// cover the key range evenly regardless of how traffic is skewed.
type KeyDist int

const (
	// DistUniform draws keys uniformly from [KeyMin, KeyMin+KeyRange).
	// This is the paper's workload and the zero value; its draw sequence
	// is bit-identical to the pre-KeyDist workload generator.
	DistUniform KeyDist = iota
	// DistZipfian draws ranks from the bounded Zipfian distribution of
	// Gray et al. (SIGMOD '94, the YCSB generator) with theta defaulting
	// to 0.99, then scatters ranks across the key range so the hot keys
	// are not neighbours in key order.
	DistZipfian
	// DistHotSet sends HotTrafficPct of the draws to a hot set holding
	// HotKeysPct of the keys (defaults: 90% of traffic to 10% of keys),
	// scattered across the range like DistZipfian's ranks.
	DistHotSet
)

func (d KeyDist) String() string {
	switch d {
	case DistZipfian:
		return "zipfian"
	case DistHotSet:
		return "hotset"
	default:
		return "uniform"
	}
}

// ParseKeyDist maps the CLI spellings onto a KeyDist.
func ParseKeyDist(s string) (KeyDist, error) {
	switch s {
	case "uniform", "":
		return DistUniform, nil
	case "zipfian", "zipf":
		return DistZipfian, nil
	case "hotset", "hot-set":
		return DistHotSet, nil
	}
	return DistUniform, fmt.Errorf("unknown key distribution %q (want uniform, zipfian or hotset)", s)
}

const (
	defaultZipfTheta     = 0.99
	defaultHotKeysPct    = 10
	defaultHotTrafficPct = 90
)

// newKeyDraw precomputes the distribution's shared, read-only constants
// once (the Zipfian zeta sum is O(KeyRange)) and returns a per-worker
// constructor that binds a worker's private rng. Every sampler consumes
// only that rng, so the draw sequence is a pure function of the seed.
func newKeyDraw(cfg *Config) func(rng *rand.Rand) func() uint64 {
	n := cfg.KeyRange
	switch cfg.Dist {
	case DistZipfian:
		theta := cfg.ZipfTheta
		if theta == 0 {
			theta = defaultZipfTheta
		}
		z := newZipf(n, theta)
		scatter := scatterFor(n)
		return func(rng *rand.Rand) func() uint64 {
			return func() uint64 {
				return intset.KeyMin + scatter(z.next(rng))
			}
		}
	case DistHotSet:
		if n < 2 {
			break // a one-key range has no hot/cold split
		}
		hotKeys, hotTraffic := cfg.HotKeysPct, cfg.HotTrafficPct
		if hotKeys <= 0 {
			hotKeys = defaultHotKeysPct
		}
		if hotTraffic <= 0 {
			hotTraffic = defaultHotTrafficPct
		}
		hk := n * uint64(hotKeys) / 100
		if hk == 0 {
			hk = 1
		}
		if hk >= n {
			hk = n - 1
		}
		scatter := scatterFor(n)
		return func(rng *rand.Rand) func() uint64 {
			return func() uint64 {
				var r uint64
				if rng.Intn(100) < hotTraffic {
					r = uint64(rng.Int63n(int64(hk)))
				} else {
					r = hk + uint64(rng.Int63n(int64(n-hk)))
				}
				return intset.KeyMin + scatter(r)
			}
		}
	}
	return func(rng *rand.Rand) func() uint64 {
		return func() uint64 {
			return intset.KeyMin + uint64(rng.Int63n(int64(n)))
		}
	}
}

// NewKeyDraw exposes the distribution sampler to external drivers (the
// memtag-load generator reuses the exact uniform/zipfian/hotset draws the
// experiments run): it precomputes the shared read-only constants for
// cfg's Dist/KeyRange/skew fields and returns a constructor that binds
// each worker's private rng. Keys are drawn from [intset.KeyMin,
// KeyMin+KeyRange); the sequence is a pure function of the rng's seed.
func NewKeyDraw(cfg *Config) func(rng *rand.Rand) func() uint64 {
	return newKeyDraw(cfg)
}

// scatterFor returns a bijection on [0, n) that spreads consecutive ranks
// across the range: rank * m mod n for an odd multiplier m coprime to n.
// A bijection (rather than a hash) keeps the rank distribution exact —
// rank 0 stays the single hottest key, merely relocated.
func scatterFor(n uint64) func(uint64) uint64 {
	if n < 3 {
		return func(r uint64) uint64 { return r }
	}
	m := (n*2/3 - 1) | 1
	for gcd(m, n) != 1 {
		m += 2
	}
	return func(r uint64) uint64 {
		hi, lo := bits.Mul64(r, m)
		_, rem := bits.Div64(hi%n, lo, n)
		return rem
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// zipf is the bounded Zipfian generator of Gray et al.: rank r in [0, n)
// is drawn with probability proportional to 1/(r+1)^theta. The constants
// are shared read-only across workers; next consumes one Float64 from the
// caller's rng per draw.
type zipf struct {
	n                uint64
	theta, alpha     float64
	zetan, eta, half float64
}

func newZipf(n uint64, theta float64) *zipf {
	if n == 0 {
		n = 1
	}
	zetan := zetaSum(n, theta)
	z := &zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  math.Pow(0.5, theta),
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaSum(2, theta)/zetan)
	return z
}

func zetaSum(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipf) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if z.n > 1 && uz < 1+z.half {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
