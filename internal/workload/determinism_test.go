package workload

import (
	"reflect"
	"testing"

	"repro/internal/history"
	"repro/internal/list"
	"repro/internal/vtags"
)

// TestPrefillDeterministic guards the prefill key derivation: the same
// seed must produce the same key sequence (experiments and the recorded
// prefill path both depend on it), and the recorded Prefill path must
// issue exactly the same insert attempts as the unrecorded one.
func TestPrefillDeterministic(t *testing.T) {
	cfg := Config{KeyRange: 64, PrefillSize: 24, Seed: 42}

	snapshot := func(c Config) ([]uint64, Counts) {
		mem := vtags.New(1<<20, 1)
		s := list.NewHarris(mem)
		n := Prefill(mem, s, c)
		return s.Keys(mem.Thread(0)), n
	}

	k1, n1 := snapshot(cfg)
	k2, n2 := snapshot(cfg)
	if !reflect.DeepEqual(k1, k2) || n1 != n2 {
		t.Fatalf("same seed, different prefill: %v vs %v", k1, k2)
	}

	recorded := cfg
	recorded.History = history.NewRecorder(1, cfg.PrefillSize)
	k3, n3 := snapshot(recorded)
	if !reflect.DeepEqual(k1, k3) || n1.TotalFill != n3.TotalFill {
		t.Fatalf("recorded prefill diverged: %v vs %v", k1, k3)
	}
	for _, e := range recorded.History.Events() {
		if e.Op != history.OpInsert || e.Pending() {
			t.Fatalf("unexpected prefill event %+v", e)
		}
	}

	k4, _ := snapshot(Config{KeyRange: 64, PrefillSize: 24, Seed: 43})
	if reflect.DeepEqual(k1, k4) {
		t.Fatal("different seeds produced identical prefill")
	}
}

// TestRunDeterministic guards the per-worker stream derivation
// (Seed + w*7919 + 1): with one thread the full run is deterministic, and
// with several threads each worker's recorded (op, key) stream is
// seed-stable even though the interleaving is not.
func TestRunDeterministic(t *testing.T) {
	run := func(threads int, seed int64) (*history.Recorder, []uint64) {
		mem := vtags.New(1<<20, threads)
		s := list.NewHarris(mem)
		rec := history.NewRecorder(threads, 64)
		cfg := Config{
			Threads: threads, KeyRange: 32, OpsPerThread: 50,
			Mix: Update3535, Seed: seed, History: rec,
		}
		Run(mem, s, cfg)
		return rec, s.Keys(mem.Thread(0))
	}

	type opKey struct {
		Op  uint8
		Key uint64
	}
	streams := func(rec *history.Recorder, threads int) [][]opKey {
		out := make([][]opKey, threads)
		for _, e := range rec.Events() {
			out[e.Worker] = append(out[e.Worker], opKey{e.Op, e.Key})
		}
		return out
	}

	// Single thread: everything, including the final snapshot, is a pure
	// function of the seed.
	r1, s1 := run(1, 7)
	r2, s2 := run(1, 7)
	if !reflect.DeepEqual(streams(r1, 1), streams(r2, 1)) {
		t.Fatal("single-thread op streams diverged for equal seeds")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("single-thread snapshots diverged: %v vs %v", s1, s2)
	}

	// Multi-thread: per-worker streams are seed-stable; distinct workers
	// draw distinct streams.
	r3, _ := run(2, 7)
	r4, _ := run(2, 7)
	st3, st4 := streams(r3, 2), streams(r4, 2)
	if !reflect.DeepEqual(st3, st4) {
		t.Fatal("per-worker op streams diverged for equal seeds")
	}
	if reflect.DeepEqual(st3[0], st3[1]) {
		t.Fatal("workers 0 and 1 drew identical streams")
	}
	r5, _ := run(2, 8)
	if reflect.DeepEqual(st3, streams(r5, 2)) {
		t.Fatal("different seeds produced identical op streams")
	}
}
