package vtags

import (
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Observability for the emulation. The vtags backend has no cost model, so
// its clock is logical: every memory/tag operation advances the thread's
// tick counter by one, and per-op "latency" reads as memory operations per
// structure operation. Tracing reuses the machine backend's Event/Tracer
// vocabulary so the same Perfetto exporter (and the backend-differential
// parity test) consumes both: the emulation emits exactly the tag-relevant
// subset of machine.EventKind — TagAdd/TagRemove/TagEvicted, Validate*,
// Commit*/VAS/IAS failures — with ticks in the Cycle field. Conflicts are
// not traced at *detection* (a failed Validate names no line): on hardware
// the TagEvicted event belongs to the writer that invalidated the line,
// and the emulation has no per-line tagger index to attribute it, so only
// explicit ForceTagEviction emits TagEvicted here.

// SetTracer installs (or removes, with nil) a tracer receiving the
// emulation's tag events. Only call while quiescent.
func (m *Memory) SetTracer(tr machine.Tracer) { m.tracer = tr }

// SetTelemetry attaches (or with nil detaches) per-thread telemetry
// recorders: thread i writes into s.Core(i) from its own goroutine. Only
// call while quiescent. The set must have at least NumThreads cores.
func (m *Memory) SetTelemetry(s *telemetry.Set) {
	if s != nil && s.NumCores() < len(m.threads) {
		panic("vtags: telemetry set smaller than thread count")
	}
	for i, t := range m.threads {
		if s == nil {
			t.tel = nil
		} else {
			t.tel = s.Core(i)
		}
	}
}

// OpClock returns this thread's logical clock (one tick per memory/tag
// operation) and its cumulative validation/commit failure count, the two
// inputs per-op telemetry needs. Single-writer — call from the goroutine
// owning the handle (or at quiescence).
func (t *Thread) OpClock() (clock, fails uint64) { return t.ticks, t.fails }

// emit delivers a tag event if a tracer is installed; like the machine's
// emit, the guard is small enough to inline so untraced runs pay a branch.
func (t *Thread) emit(kind machine.EventKind, target int, line core.Line) {
	if t.m.tracer != nil {
		t.emitSlow(kind, target, line)
	}
}

func (t *Thread) emitSlow(kind machine.EventKind, target int, line core.Line) {
	t.m.tracer.Trace(machine.Event{
		Kind:   kind,
		Core:   t.id,
		Target: target,
		Line:   uint64(line),
		Cycle:  t.ticks,
	})
}
