package vtags

import (
	"testing"

	"repro/internal/core"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
)

// The emulation exists to stress-test structures at native speed, so its
// hot path must stay allocation-free on resident lines: the commit lock
// set and the tag set reuse preallocated per-thread buffers, and line
// state chunks are installed once on first touch.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestHotPathAllocFree(t *testing.T) {
	m := New(1<<20, 2)
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine * 4)
	for i := 0; i < 4; i++ {
		th.Store(a+core.Addr(i*core.LineSize), uint64(i))
	}

	assertZeroAllocs(t, "Load", func() { th.Load(a) })
	assertZeroAllocs(t, "Store", func() { th.Store(a, 42) })
	assertZeroAllocs(t, "CAS", func() {
		v := th.Load(a)
		th.CAS(a, v, v+1)
	})
	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "RemoveTag", func() {
		th.AddTag(a, core.LineSize)
		th.RemoveTag(a, core.LineSize)
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}

// TestHotPathAllocFreeWithTelemetry re-runs the budget with telemetry
// recording enabled, matching the machine backend's guarantee.
func TestHotPathAllocFreeWithTelemetry(t *testing.T) {
	m := New(1<<20, 2)
	m.SetTelemetry(telemetry.NewSet(m.NumThreads()))
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine * 4)
	for i := 0; i < 4; i++ {
		th.Store(a+core.Addr(i*core.LineSize), uint64(i))
	}

	assertZeroAllocs(t, "Load+telemetry", func() { th.Load(a) })
	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet+telemetry", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS+telemetry", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS+telemetry", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}

// TestHotPathAllocFreeWithReclaim re-runs the tag-op budget with a
// reclamation domain attached: announcing and retracting tag lines uses the
// handle's preallocated slot table, so wiring reclamation must not cost the
// hot path an allocation.
func TestHotPathAllocFreeWithReclaim(t *testing.T) {
	m := New(1<<20, 2)
	m.SetReclaim(reclaim.NewDomainFor(m))
	th := m.threads[0]
	a := m.Alloc(core.WordsPerLine * 4)
	for i := 0; i < 4; i++ {
		th.Store(a+core.Addr(i*core.LineSize), uint64(i))
	}

	assertZeroAllocs(t, "AddTag+Validate+ClearTagSet+reclaim", func() {
		if !th.AddTag(a, core.LineSize*2) {
			t.Fatal("AddTag failed")
		}
		if !th.Validate() {
			t.Fatal("Validate failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "RemoveTag+reclaim", func() {
		th.AddTag(a, core.LineSize)
		th.RemoveTag(a, core.LineSize)
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "VAS+reclaim", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.VAS(a, v+1) {
			t.Fatal("uncontended VAS failed")
		}
		th.ClearTagSet()
	})
	assertZeroAllocs(t, "IAS+reclaim", func() {
		th.AddTag(a, core.LineSize)
		v := th.Load(a)
		if !th.IAS(a, v+1) {
			t.Fatal("uncontended IAS failed")
		}
		th.ClearTagSet()
	})
}
