package vtags

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestLoadStoreCAS(t *testing.T) {
	m := New(1<<16, 2)
	th := m.Thread(0)
	a := m.Alloc(2)
	th.Store(a, 11)
	if th.Load(a) != 11 {
		t.Fatal("load after store")
	}
	if th.CAS(a, 10, 12) || th.Load(a) != 11 {
		t.Fatal("failed CAS semantics wrong")
	}
	if !th.CAS(a, 11, 12) || th.Load(a) != 12 {
		t.Fatal("successful CAS semantics wrong")
	}
}

func TestTagValidate(t *testing.T) {
	m := New(1<<16, 2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t1.AddTag(a, 8)
	if !t1.Validate() {
		t.Fatal("fresh tag invalid")
	}
	t0.Store(a, 1)
	if t1.Validate() {
		t.Fatal("remote store not detected")
	}
	t1.ClearTagSet()
	t1.AddTag(a, 8)
	if !t1.Validate() {
		t.Fatal("retag after clear invalid")
	}
}

func TestOwnWriteKeepsOwnTag(t *testing.T) {
	m := New(1<<16, 1)
	th := m.Thread(0)
	a := m.Alloc(1)
	th.AddTag(a, 8)
	th.Store(a, 3)
	if !th.Validate() {
		t.Fatal("own store invalidated own tag")
	}
}

func TestVASIAS(t *testing.T) {
	m := New(1<<16, 2)
	t0, t1 := m.Thread(0), m.Thread(1)
	node := m.Alloc(1)
	target := m.Alloc(1)

	t0.AddTag(node, 8)
	t1.AddTag(node, 8)
	if !t0.VAS(target, 5) {
		t.Fatal("VAS failed")
	}
	if !t1.Validate() {
		t.Fatal("VAS invalidated remote tag on non-target line")
	}
	if !t0.IAS(target, 6) {
		t.Fatal("IAS failed")
	}
	if t1.Validate() {
		t.Fatal("IAS did not invalidate remote tag")
	}
	if !t0.Validate() {
		t.Fatal("IAS invalidated issuer's tags")
	}
	if t1.Load(target) != 6 {
		t.Fatal("IAS value lost")
	}
}

func TestVASFailsAfterConflict(t *testing.T) {
	m := New(1<<16, 2)
	t0, t1 := m.Thread(0), m.Thread(1)
	node := m.Alloc(1)
	target := m.Alloc(1)
	t1.AddTag(node, 8)
	t0.Store(node, 9)
	if t1.VAS(target, 1) {
		t.Fatal("VAS succeeded despite conflict")
	}
	if t1.Load(target) != 0 {
		t.Fatal("failed VAS wrote")
	}
}

func TestMaxTags(t *testing.T) {
	m := New(1<<16, 1, WithMaxTags(2))
	th := m.Thread(0)
	a, b, c := m.Alloc(1), m.Alloc(1), m.Alloc(1)
	if !th.AddTag(a, 8) || !th.AddTag(b, 8) {
		t.Fatal("tags below limit rejected")
	}
	if th.AddTag(c, 8) {
		t.Fatal("tag beyond limit accepted")
	}
	if th.Validate() {
		t.Fatal("validate after overflow succeeded")
	}
	th.ClearTagSet()
	if !th.AddTag(c, 8) || !th.Validate() {
		t.Fatal("overflow latch survives ClearTagSet")
	}
}

func TestRemoveTagLatchesConflict(t *testing.T) {
	m := New(1<<16, 2)
	t0, t1 := m.Thread(0), m.Thread(1)
	a := m.Alloc(1)
	t1.AddTag(a, 8)
	t0.Store(a, 1)
	t1.RemoveTag(a, 8)
	if t1.Validate() {
		t.Fatal("conflict forgotten by RemoveTag")
	}
}

// TestForceTagEvictionPerLine pins the targeted-eviction contract mid
// hand-over-hand: evicting a line the thread no longer tags is a no-op
// reporting false, evicting a held tag latches invalidation, and
// ClearTagSet resets the latch.
func TestForceTagEvictionPerLine(t *testing.T) {
	m := New(1<<16, 1)
	th := m.Thread(0).(*Thread)
	a, b, c := m.Alloc(1), m.Alloc(1), m.Alloc(1)

	// Hand-over-hand window {a, b}: slide past a, as a traversal does.
	th.AddTag(a, 8)
	th.AddTag(b, 8)
	if th.TagCount() != 2 {
		t.Fatalf("TagCount = %d, want 2", th.TagCount())
	}
	seen := map[core.Line]bool{}
	for i := 0; i < th.TagCount(); i++ {
		seen[th.TaggedLine(i)] = true
	}
	if !seen[a.Line()] || !seen[b.Line()] {
		t.Fatalf("TaggedLine missed a held tag: %v", seen)
	}
	th.RemoveTag(a, 8)

	// Lines outside the current window cannot be evicted.
	if th.ForceTagEviction(c.Line()) {
		t.Fatal("evicting a never-tagged line reported true")
	}
	if th.ForceTagEviction(a.Line()) {
		t.Fatal("evicting a line the window slid past reported true")
	}
	if !th.Validate() {
		t.Fatal("no-op evictions invalidated the window")
	}

	// Evicting the held tag latches failure until ClearTagSet.
	if !th.ForceTagEviction(b.Line()) {
		t.Fatal("evicting a held tag reported false")
	}
	if th.Validate() {
		t.Fatal("Validate succeeded after targeted eviction")
	}
	th.ClearTagSet()
	th.AddTag(b, 8)
	if !th.Validate() {
		t.Fatal("eviction latch survived ClearTagSet")
	}
}

func TestConcurrentVASCounter(t *testing.T) {
	const workers, per = 8, 500
	m := New(1<<16, workers)
	ctr := m.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					th.ClearTagSet()
					th.AddTag(ctr, 8)
					v := th.Load(ctr)
					if th.VAS(ctr, v+1) {
						break
					}
				}
			}
		}(m.Thread(w))
	}
	wg.Wait()
	if got := m.Thread(0).Load(ctr); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestConcurrentIASCounter(t *testing.T) {
	const workers, per = 8, 300
	m := New(1<<16, workers)
	ctr := m.Alloc(1)
	aux := m.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					th.ClearTagSet()
					th.AddTag(ctr, 8)
					th.AddTag(aux, 8)
					v := th.Load(ctr)
					if th.IAS(ctr, v+1) {
						break
					}
				}
			}
		}(m.Thread(w))
	}
	wg.Wait()
	if got := m.Thread(0).Load(ctr); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}
