package vtags_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// tagEventRecorder keeps the tag-relevant subset of the machine event
// vocabulary — the subset the vtags emulation promises to reproduce.
type tagEventRecorder struct {
	events []string
}

func (r *tagEventRecorder) Trace(e machine.Event) {
	switch e.Kind {
	case machine.EvTagAdd, machine.EvTagRemove, machine.EvTagEvicted,
		machine.EvValidateOK, machine.EvValidateFail,
		machine.EvCommitVAS, machine.EvCommitIAS,
		machine.EvVASFail, machine.EvIASFail:
		r.events = append(r.events, fmt.Sprintf("%s line=%d", e.Kind, e.Line))
	}
}

// tagThread is the op surface the parity workload drives: core.Thread plus
// the forced-eviction hook both backends expose.
type tagThread interface {
	core.Thread
	ForceTagEviction(l core.Line) bool
}

// runParityWorkload drives one thread through a deterministic script
// covering every tag-event-producing path: multi-line tagging, successful
// and failing validation, VAS/IAS commits and their failures (via forced
// eviction and overflow), and tag removal.
func runParityWorkload(th tagThread, base core.Addr, maxTags int) {
	lineAddr := func(i int) core.Addr { return base + core.Addr(i*core.LineSize) }

	// Happy path: tag two lines, validate, VAS into one, untag, IAS.
	th.AddTag(lineAddr(0), core.LineSize*2)
	th.Validate()
	th.VAS(lineAddr(0), 7)
	th.RemoveTag(lineAddr(1), core.LineSize)
	th.IAS(lineAddr(0), 8)
	th.ClearTagSet()

	// Forced eviction: validation and both commits fail until cleared.
	th.AddTag(lineAddr(2), core.LineSize)
	th.ForceTagEviction(core.Addr.Line(lineAddr(2)))
	th.Validate()
	th.VAS(lineAddr(2), 9)
	th.IAS(lineAddr(2), 10)
	th.ClearTagSet()

	// Overflow: exceeding MaxTags emits no event but poisons validation.
	for i := 0; i <= maxTags; i++ {
		th.AddTag(lineAddr(i), core.LineSize)
	}
	th.Validate()
	th.VAS(lineAddr(0), 11)
	th.ClearTagSet()

	// Recovery after clear.
	th.AddTag(lineAddr(3), core.LineSize)
	th.Validate()
	th.ClearTagSet()
}

// TestBackendTagEventParity pins tracing parity between the two backends:
// on a deterministic single-thread workload the cycle-cost simulator and
// the version emulation must emit identical sequences of tag events. Lines
// are pre-touched and few enough to rule out machine capacity evictions,
// which the emulation (having no caches) cannot reproduce.
func TestBackendTagEventParity(t *testing.T) {
	const maxTags = 4
	const numLines = maxTags + 2

	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	cfg.MaxTags = maxTags
	cfg.SyncWindowCycles = 0
	mm := machine.New(cfg)
	mrec := &tagEventRecorder{}
	mm.SetTracer(mrec)
	mth := mm.Thread(0).(tagThread)
	mbase := mm.Alloc(core.WordsPerLine * numLines)
	for i := 0; i < numLines; i++ {
		mth.Store(mbase+core.Addr(i*core.LineSize), 1)
	}

	vm := vtags.New(1<<20, 1, vtags.WithMaxTags(maxTags))
	vrec := &tagEventRecorder{}
	vm.SetTracer(vrec)
	vth := vm.Thread(0).(tagThread)
	vbase := vm.Alloc(core.WordsPerLine * numLines)
	for i := 0; i < numLines; i++ {
		vth.Store(vbase+core.Addr(i*core.LineSize), 1)
	}

	runParityWorkload(mth, mbase, maxTags)
	runParityWorkload(vth, vbase, maxTags)

	// Compare kinds only alongside line offsets from each backend's base:
	// absolute lines differ between address spaces.
	norm := func(events []string, base core.Addr) []string {
		out := make([]string, len(events))
		baseLine := base.Line()
		for i, e := range events {
			var kind string
			var line uint64
			fmt.Sscanf(e, "%s line=%d", &kind, &line)
			rel := int64(line) - int64(baseLine)
			out[i] = fmt.Sprintf("%s +%d", kind, rel)
		}
		return out
	}
	me := norm(mrec.events, mbase)
	ve := norm(vrec.events, vbase)

	if len(me) == 0 {
		t.Fatal("machine backend emitted no tag events")
	}
	if len(me) != len(ve) {
		t.Fatalf("event counts differ: machine %d, vtags %d\nmachine: %v\nvtags:   %v",
			len(me), len(ve), me, ve)
	}
	for i := range me {
		if me[i] != ve[i] {
			t.Errorf("event %d differs: machine %q, vtags %q", i, me[i], ve[i])
		}
	}
}
