// Package vtags is a software emulation of memory tagging based on
// per-line version numbers, in the spirit of OPTIK versioned locks.
//
// The paper notes there is "no immediate way to simulate MemTags in
// software"; this backend emulates the *semantics* (not the cost) so the
// data structures in this repository can be stress-tested at native speed
// and so the cost of a software emulation can be compared against the
// hardware model as an ablation.
//
// Every cache line has a 64-bit version; writers bump it under a per-line
// spin mutex. AddTag records (line, version); Validate compares. VAS/IAS
// lock the tagged lines plus the target in address order, re-check the
// versions, and commit — IAS additionally bumps the version of every
// tagged line, which is exactly the "invalidate all tagged lines at other
// cores" semantics (any other thread's tag on those lines now fails).
//
// Unlike hardware tags there are no spurious evictions, so validation here
// fails only on real conflicts. There is also no ABA window: a line whose
// value was restored still fails validation because its version moved.
package vtags

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/reclaim"
	"repro/internal/telemetry"
)

// lineState is one line's version and writer lock. Line state is chunked
// and installed on first touch, mirroring mem.Space: emulated spaces are
// sized generously but sparsely touched, and zeroing per-line state for
// the whole space dominated Memory construction cost.
type lineState struct {
	version uint64 // even = unlocked, odd = write in progress
	mu      sync.Mutex
}

type lineChunk [mem.ChunkLines]lineState

// Memory is the versioned-emulation address space.
type Memory struct {
	space   *mem.Space
	lines   []atomic.Pointer[lineChunk]
	threads []*Thread
	maxTags int
	// tracer, when non-nil, receives the tag-relevant subset of the
	// machine backend's events (see telemetry.go).
	tracer machine.Tracer

	// tagOverflows counts tag-set overflow latches (AddTag past maxTags);
	// tagEvictions counts eviction latches (ForceTagEviction plus RemoveTag
	// observing a moved version). Both are cumulative and readable mid-run
	// (the serve flight recorder's stats snapshot); overflow and eviction
	// are rare, so the shared atomics cost nothing on the common path.
	tagOverflows atomic.Uint64
	tagEvictions atomic.Uint64
}

// TagStats returns the cumulative tag-set overflow and eviction latch
// counts across all threads. Safe to call at any time; both counters are
// monotonic.
func (m *Memory) TagStats() (overflows, evictions uint64) {
	return m.tagOverflows.Load(), m.tagEvictions.Load()
}

var _ core.Memory = (*Memory)(nil)

// Option configures a Memory.
type Option func(*Memory)

// WithMaxTags bounds the per-thread tag set, mirroring the hardware
// MaxTags constant. The default is 32.
func WithMaxTags(n int) Option { return func(m *Memory) { m.maxTags = n } }

// New creates an emulated space of the given size with one handle per
// thread.
func New(bytes, threads int, opts ...Option) *Memory {
	space := mem.NewSpace(bytes)
	m := &Memory{
		space:   space,
		lines:   make([]atomic.Pointer[lineChunk], (space.NumLines()+mem.ChunkLines-1)/mem.ChunkLines),
		maxTags: 32,
	}
	for _, o := range opts {
		o(m)
	}
	m.threads = make([]*Thread, threads)
	for i := range m.threads {
		m.threads[i] = newThread(m, i)
	}
	return m
}

func newThread(m *Memory, id int) *Thread {
	// The tag set is bounded by maxTags and the commit lock set by
	// maxTags+1; sizing the reused buffers up front keeps every memory/tag
	// operation allocation-free.
	return &Thread{
		m:       m,
		id:      id,
		arena:   mem.NewArena(m.space),
		tags:    make([]tagEntry, 0, m.maxTags),
		lockBuf: make([]core.Line, 0, m.maxTags+1),
	}
}

// lineAt returns line l's state, installing its chunk on first touch.
func (m *Memory) lineAt(l core.Line) *lineState {
	ci := uint64(l) / mem.ChunkLines
	c := m.lines[ci].Load()
	if c == nil {
		c = m.installLineChunk(ci)
	}
	return &c[uint64(l)%mem.ChunkLines]
}

// installLineChunk materializes line-state chunk ci, losing the race
// gracefully if another thread installs it first.
func (m *Memory) installLineChunk(ci uint64) *lineChunk {
	fresh := new(lineChunk)
	if m.lines[ci].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return m.lines[ci].Load()
}

// NumThreads returns the number of thread handles.
func (m *Memory) NumThreads() int { return len(m.threads) }

// Thread returns handle id.
func (m *Memory) Thread(id int) core.Thread { return m.threads[id] }

// SpareThread returns an auxiliary handle outside the counted thread set,
// for harness controllers (the fallback Mode-line flipper) that need a
// coherent participant without consuming one of the workload's handles.
// The emulation has no per-thread hardware state, so the handle is just
// another Thread with id -1.
func (m *Memory) SpareThread() core.Thread { return newThread(m, -1) }

// Alloc allocates line-aligned words.
func (m *Memory) Alloc(words int) core.Addr { return m.space.Alloc(words) }

// MaxTags returns the per-thread tag budget.
func (m *Memory) MaxTags() int { return m.maxTags }

// SetReclaim attaches a reclamation domain: from here on each thread
// announces its tagged lines into its domain handle (AddTag/RemoveTag/
// ClearTagSet), which is what lets reclaim.Pool scans see which retired
// lines a reader could still validate. Only call while quiescent. Spare
// threads are not registered and must not run reclaiming structures.
func (m *Memory) SetReclaim(d *reclaim.Domain) {
	for i, t := range m.threads {
		t.rec = d.Handle(i)
	}
}

// lineVersion reads a line's version with acquire semantics.
func (m *Memory) lineVersion(l core.Line) uint64 {
	return atomic.LoadUint64(&m.lineAt(l).version)
}

// bumpLineLocked advances a line's version; the caller holds the line lock.
func (m *Memory) bumpLineLocked(l core.Line) {
	atomic.AddUint64(&m.lineAt(l).version, 1)
}

// Thread is one emulated core's handle.
type Thread struct {
	m  *Memory
	id int
	// arena is the thread's private allocation extent over the shared
	// space: the emulation's hottest global lock used to be the shared
	// allocation mutex, and the arena stripes it away (extent refills are
	// one shared atomic each).
	arena *mem.Arena

	tags []tagEntry
	// lockBuf is scratch for the sorted line set locked by commit, reused
	// across attempts (the machine backend's Thread.lockSet analogue).
	lockBuf  []core.Line
	overflow bool
	// evicted latches a conflict or forced eviction observed on a line
	// whose tag has since been dropped (RemoveTag) or targeted
	// (ForceTagEviction): like the hardware's evicted set, it is not
	// forgotten until ClearTagSet even though the entry itself is gone.
	evicted bool

	// ticks is the thread's logical clock: one per memory/tag operation
	// (the emulation's analogue of the machine's cycle counter). fails
	// counts validation/commit failures. Both feed OpClock.
	ticks uint64
	fails uint64
	// tel, when non-nil, receives emulation-side telemetry from this
	// goroutine only. See Memory.SetTelemetry.
	tel *telemetry.Core
	// rec, when non-nil, is this thread's reclamation-domain handle; tag
	// operations mirror the tag set into it. See Memory.SetReclaim.
	rec *reclaim.Handle
}

type tagEntry struct {
	line    core.Line
	version uint64
}

var _ core.Thread = (*Thread)(nil)

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Alloc allocates line-aligned words from the thread's private arena.
func (t *Thread) Alloc(words int) core.Addr { return t.arena.Alloc(words) }

// Load reads the word at a.
func (t *Thread) Load(a core.Addr) uint64 {
	t.ticks++
	return t.m.space.AtomicRead(a)
}

// Store writes v at a and bumps the line version (invalidating tags).
func (t *Thread) Store(a core.Addr, v uint64) {
	t.ticks++
	ls := t.m.lineAt(a.Line())
	ls.mu.Lock()
	t.m.space.AtomicWrite(a, v)
	atomic.AddUint64(&ls.version, 1)
	t.retagLocked(a.Line())
	ls.mu.Unlock()
}

// CAS compares-and-swaps the word at a, bumping the version on success.
func (t *Thread) CAS(a core.Addr, old, new uint64) bool {
	t.ticks++
	ls := t.m.lineAt(a.Line())
	ls.mu.Lock()
	ok := t.m.space.Read(a) == old
	if ok {
		t.m.space.AtomicWrite(a, new)
		atomic.AddUint64(&ls.version, 1)
		t.retagLocked(a.Line())
	}
	ls.mu.Unlock()
	return ok
}

// AddTag records the current version of every line of [a, a+size).
func (t *Thread) AddTag(a core.Addr, size int) bool {
	t.ticks++
	first, last, ok := core.LineSpan(a, size)
	if !ok {
		return true
	}
	for l := first; l <= last; l++ {
		if t.tagged(l) {
			continue
		}
		if len(t.tags) >= t.m.maxTags {
			if !t.overflow {
				t.m.tagOverflows.Add(1)
			}
			t.overflow = true
			return false
		}
		t.tags = append(t.tags, tagEntry{line: l, version: t.m.lineVersion(l)})
		if t.rec != nil {
			t.rec.Announce(l)
		}
		if t.tel != nil {
			t.tel.NoteTagOccupancy(len(t.tags))
		}
		t.emit(machine.EvTagAdd, -1, l)
	}
	return true
}

// RemoveTag drops tags on lines of [a, a+size). A conflict already
// observed is not forgotten (matching hardware semantics): RemoveTag checks
// the line's version before dropping it and latches a failure.
func (t *Thread) RemoveTag(a core.Addr, size int) {
	t.ticks++
	first, last, ok := core.LineSpan(a, size)
	if !ok {
		return
	}
	for l := first; l <= last; l++ {
		for i, e := range t.tags {
			if e.line == l {
				if t.m.lineVersion(l) != e.version {
					if !t.evicted {
						t.m.tagEvictions.Add(1)
					}
					t.evicted = true // latch failure like an eviction
				}
				t.tags = append(t.tags[:i], t.tags[i+1:]...)
				if t.rec != nil {
					t.rec.Retract(l)
				}
				t.emit(machine.EvTagRemove, -1, l)
				break
			}
		}
	}
}

func (t *Thread) tagged(l core.Line) bool {
	for _, e := range t.tags {
		if e.line == l {
			return true
		}
	}
	return false
}

// Validate reports whether every tagged line still has its recorded
// version.
func (t *Thread) Validate() bool {
	t.ticks++
	ok := !t.overflow && !t.evicted
	if ok {
		for _, e := range t.tags {
			if t.m.lineVersion(e.line) != e.version {
				ok = false
				break
			}
		}
	}
	if t.tel != nil {
		t.tel.NoteValidate(ok)
	}
	if ok {
		t.noteValidatedTags()
		t.emit(machine.EvValidateOK, -1, 0)
	} else {
		t.fails++
		t.emit(machine.EvValidateFail, -1, 0)
	}
	return ok
}

// noteValidatedTags reports a successful validation of the whole tag set
// to the reclamation guard (use-after-free detection on freed lines).
func (t *Thread) noteValidatedTags() {
	if t.rec == nil || !t.rec.GuardActive() {
		return
	}
	for _, e := range t.tags {
		t.rec.NoteValidatedTag(e.line)
	}
}

// TagCount returns the number of tagged lines.
func (t *Thread) TagCount() int { return len(t.tags) }

// ForceTagEviction simulates a spurious capacity eviction of the named
// line: if l is currently tagged, validation fails until ClearTagSet,
// exactly as when hardware displaces that tagged line from L1. The
// emulation has no real capacity pressure, so this hook is how adversarial
// harnesses (internal/schedfuzz, internal/schedexplore) aim eviction
// pressure at specific tags — one node of a hand-over-hand window, say.
// It must be called from the goroutine owning the handle (or with the
// handle otherwise quiesced). A line that is not tagged — because the
// traversal window already slid past it — is left alone and false is
// reported.
func (t *Thread) ForceTagEviction(l core.Line) bool {
	if !t.tagged(l) {
		return false
	}
	if !t.evicted {
		t.m.tagEvictions.Add(1)
	}
	t.evicted = true // latch failure, like a recorded eviction
	t.emit(machine.EvTagEvicted, -1, l)
	return true
}

// TaggedLine returns the i'th tagged line in insertion order, so harnesses
// can aim ForceTagEviction at a held tag. i must be < TagCount().
func (t *Thread) TaggedLine(i int) core.Line { return t.tags[i].line }

// ClearTagSet drops all tags and the overflow/eviction latches.
func (t *Thread) ClearTagSet() {
	t.tags = t.tags[:0]
	t.overflow = false
	t.evicted = false
	if t.rec != nil {
		t.rec.RetractAll()
	}
}

// VAS validates under the tagged lines' locks and stores v at a.
func (t *Thread) VAS(a core.Addr, v uint64) bool { return t.commit(a, v, false) }

// IAS validates, bumps every tagged line's version (invalidating all other
// threads' tags on them), and stores v at a.
func (t *Thread) IAS(a core.Addr, v uint64) bool { return t.commit(a, v, true) }

func (t *Thread) commit(a core.Addr, v uint64, invalidateTags bool) bool {
	t.ticks++
	target := a.Line()
	if t.overflow || t.evicted {
		t.noteCommit(false, invalidateTags, target)
		return false
	}
	// Reuse the per-thread lock buffer and sort it closure-free: the set
	// is bounded by maxTags+1, so insertion sort over the reused buffer
	// beats rebuilding a slice and sort.Slice on every commit attempt.
	lines := t.lockBuf[:0]
	for _, e := range t.tags {
		lines = append(lines, e.line)
	}
	if !t.tagged(target) {
		lines = append(lines, target)
	}
	insertionSortLines(lines)
	t.lockBuf = lines
	for _, l := range lines {
		t.m.lineAt(l).mu.Lock()
	}
	ok := true
	for _, e := range t.tags {
		if t.m.lineVersion(e.line) != e.version {
			ok = false
			break
		}
	}
	if ok {
		t.noteValidatedTags()
		t.m.space.AtomicWrite(a, v)
		if invalidateTags {
			for i := range t.tags {
				t.m.bumpLineLocked(t.tags[i].line)
				t.tags[i].version = t.m.lineVersion(t.tags[i].line)
			}
			if !t.tagged(target) {
				t.m.bumpLineLocked(target)
			}
		} else {
			t.m.bumpLineLocked(target)
			// Our own tag on the target (if any) tracks the new version so
			// our later validations don't fail on our own write.
			for i := range t.tags {
				if t.tags[i].line == target {
					t.tags[i].version = t.m.lineVersion(target)
				}
			}
		}
	}
	for i := len(lines) - 1; i >= 0; i-- {
		t.m.lineAt(lines[i]).mu.Unlock()
	}
	t.noteCommit(ok, invalidateTags, target)
	return ok
}

// noteCommit records a VAS/IAS outcome in telemetry and the trace, and
// counts failures toward OpClock, matching the machine backend's event
// vocabulary (CommitVAS/CommitIAS on success, VASFail/IASFail otherwise).
func (t *Thread) noteCommit(ok, invalidateTags bool, target core.Line) {
	if !ok {
		t.fails++
	}
	if invalidateTags {
		if t.tel != nil {
			t.tel.NoteIAS(ok)
		}
		if ok {
			t.emit(machine.EvCommitIAS, -1, target)
		} else {
			t.emit(machine.EvIASFail, -1, target)
		}
		return
	}
	if t.tel != nil {
		t.tel.NoteVAS(ok)
	}
	if ok {
		t.emit(machine.EvCommitVAS, -1, target)
	} else {
		t.emit(machine.EvVASFail, -1, target)
	}
}

// insertionSortLines sorts a small line slice in place. The commit lock set
// is bounded by maxTags+1, where insertion sort beats sort.Slice and avoids
// the closure allocation on every attempt.
func insertionSortLines(s []core.Line) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// retagLocked re-records the current version for this thread's own tag on
// line l, if any: like hardware, a core's own write does not invalidate its
// own tag. The caller holds l's lock.
func (t *Thread) retagLocked(l core.Line) {
	for i := range t.tags {
		if t.tags[i].line == l {
			t.tags[i].version = t.m.lineVersion(l)
			return
		}
	}
}
