package stm

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// TestTaggedFailFastAborts pins the tagged variant's fail-fast behaviour:
// a reader whose tagged line is written by a concurrent committer aborts
// (TagAborts) instead of re-reading its read set, and the retry succeeds.
func TestTaggedFailFastAborts(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	tm := NewTagged(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	a, b := mem.Alloc(1), mem.Alloc(1)

	first := true
	tm.Run(t0, func(tx *Tx) {
		_ = tx.Read(a)
		if first {
			first = false
			// A conflicting commit lands between t0's two reads.
			tm.Run(t1, func(tx2 *Tx) { tx2.Write(a, 9) })
		}
		_ = tx.Read(b)
		tx.Write(b, tx.Read(a)+1)
	})
	if tm.TagAborts.Load() == 0 {
		t.Fatal("conflicting write did not trigger a tag abort")
	}
	if got := t0.Load(b); got != 10 {
		t.Fatalf("retried transaction saw stale data: b = %d, want 10", got)
	}
}

// TestTaggedReaderIgnoresUnrelatedCommits is the tagged variant's key win
// over baseline NOrec: a committing writer that touches none of a reader's
// lines does not force the reader to re-validate its read set.
func TestTaggedReaderIgnoresUnrelatedCommits(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 8 << 20
	m := machine.New(cfg)
	tm := NewTagged(m)
	t0, t1 := m.Thread(0), m.Thread(1)

	mine := make([]core.Addr, 8)
	for i := range mine {
		mine[i] = m.Alloc(1)
	}
	other := m.Alloc(1)

	loadsBefore := m.Snapshot().Loads
	tm.Run(t0, func(tx *Tx) {
		for i, a := range mine {
			tx.Read(a)
			if i == 4 {
				// Unrelated commit mid-transaction.
				tm.Run(t1, func(tx2 *Tx) { tx2.Write(other, 1) })
			}
		}
	})
	// Reader loads: ~1 per Read + begin; writer adds a handful. Baseline
	// NOrec would re-read the growing read set after the commit.
	readerLoads := m.Snapshot().Loads - loadsBefore
	if readerLoads > 25 {
		t.Fatalf("reader issued %d loads; unrelated commit forced re-validation", readerLoads)
	}
	if tm.Aborts.Load() != 0 {
		t.Fatalf("unrelated commit aborted the reader (%d aborts)", tm.Aborts.Load())
	}
}

// TestTaggedDegradesAfterRepeatedTagAborts: with an adversarial tiny L1,
// tagged transactions suffer spurious evictions; after tagAbortLimit
// consecutive tag aborts the attempt must run value-based and commit.
func TestTaggedDegradesAfterRepeatedTagAborts(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 8 << 20
	cfg.L1Bytes = 2 * core.LineSize
	cfg.L1Ways = 1
	m := machine.New(cfg)
	tm := NewTagged(m)
	th := m.Thread(0)
	addrs := make([]core.Addr, 16)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
		th.Store(addrs[i], uint64(i))
	}
	var sum uint64
	tm.Run(th, func(tx *Tx) {
		sum = 0
		for _, a := range addrs {
			sum += tx.Read(a)
		}
		tx.Write(addrs[0], sum)
	})
	if sum != 120 {
		t.Fatalf("sum = %d, want 120", sum)
	}
	if th.Load(addrs[0]) != 120 {
		t.Fatal("degraded transaction did not commit")
	}
}

// TestTaggedWriterSerialization: concurrent tagged writers on the same
// word never lose increments (IAS lock acquisition is exclusive).
func TestTaggedWriterSerialization(t *testing.T) {
	const workers, per = 4, 200
	mem := vtags.New(8<<20, workers)
	tm := NewTagged(mem)
	ctr := mem.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.Run(th, func(tx *Tx) {
					tx.Write(ctr, tx.Read(ctr)+1)
				})
			}
		}(mem.Thread(w))
	}
	wg.Wait()
	if got := mem.Thread(0).Load(ctr); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if tm.Commits.Load() != workers*per {
		t.Fatalf("commits = %d", tm.Commits.Load())
	}
}

// TestSequenceLockParity: the lock word is always even while quiescent and
// advances by exactly 2 per writing commit.
func TestSequenceLockParity(t *testing.T) {
	for _, mk := range []func(core.Memory) *TM{NewNOrec, NewTagged} {
		mem := vtags.New(1<<20, 1)
		tm := mk(mem)
		th := mem.Thread(0)
		a := mem.Alloc(1)
		for i := 0; i < 10; i++ {
			tm.Run(th, func(tx *Tx) { tx.Write(a, uint64(i)) })
		}
		if got := th.Load(tm.SeqAddr()); got != 20 {
			t.Fatalf("seq = %d, want 20", got)
		}
	}
}
