package stm

import (
	"testing"

	"repro/internal/vtags"
)

// attemptEnd is one TxAttemptEnd record.
type attemptEnd struct {
	committed, fromTags bool
}

// recObs records every observer callback, for asserting attempt shapes.
type recObs struct {
	starts    int
	ends      []attemptEnd
	overflows int
}

func (o *recObs) TxAttemptStart()                 { o.starts++ }
func (o *recObs) TxAttemptEnd(committed, ft bool) { o.ends = append(o.ends, attemptEnd{committed, ft}) }
func (o *recObs) TxTagOverflow()                  { o.overflows++ }

// TestObserverCommit: a conflict-free transaction yields exactly one
// attempt, ending committed, on both the Run and RunCached paths.
func TestObserverCommit(t *testing.T) {
	for _, cached := range []bool{false, true} {
		mem := vtags.New(1<<20, 1)
		tm := NewTagged(mem)
		tm.Prepare(1)
		th := mem.Thread(0)
		obs := &recObs{}
		tm.SetTxObserver(th.ID(), obs)
		a := mem.Alloc(1)
		body := func(tx *Tx) { tx.Write(a, tx.Read(a)+1) }
		if cached {
			tm.RunCached(th, body)
		} else {
			tm.Run(th, body)
		}
		if obs.starts != 1 || len(obs.ends) != 1 {
			t.Fatalf("cached=%v: starts=%d ends=%v, want one committed attempt", cached, obs.starts, obs.ends)
		}
		if e := obs.ends[0]; !e.committed || e.fromTags {
			t.Fatalf("cached=%v: attempt end %+v, want committed", cached, e)
		}
		if obs.overflows != 0 {
			t.Fatalf("cached=%v: unexpected overflow callbacks: %d", cached, obs.overflows)
		}
	}
}

// TestObserverValueAbort: under baseline NOrec a conflicting commit
// mid-transaction produces a value-based abort (fromTags=false) followed
// by a committing retry.
func TestObserverValueAbort(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	tm := NewNOrec(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	obs := &recObs{}
	tm.SetTxObserver(t0.ID(), obs)
	a, b := mem.Alloc(1), mem.Alloc(1)

	first := true
	tm.Run(t0, func(tx *Tx) {
		_ = tx.Read(a)
		if first {
			first = false
			tm.Run(t1, func(tx2 *Tx) { tx2.Write(a, 9) })
		}
		tx.Write(b, tx.Read(a)+1)
	})
	if obs.starts < 2 {
		t.Fatalf("starts=%d, want >= 2 (abort + retry)", obs.starts)
	}
	if obs.starts != len(obs.ends) {
		t.Fatalf("starts=%d ends=%d: every attempt must end", obs.starts, len(obs.ends))
	}
	sawAbort := false
	for _, e := range obs.ends[:len(obs.ends)-1] {
		if !e.committed {
			sawAbort = true
			if e.fromTags {
				t.Fatalf("baseline NOrec abort flagged fromTags: %+v", obs.ends)
			}
		}
	}
	if !sawAbort {
		t.Fatalf("no aborted attempt observed: %+v", obs.ends)
	}
	if last := obs.ends[len(obs.ends)-1]; !last.committed {
		t.Fatalf("final attempt did not commit: %+v", obs.ends)
	}
}

// TestObserverTagAbort: the tagged variant's fail-fast abort surfaces as
// fromTags=true.
func TestObserverTagAbort(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	tm := NewTagged(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	obs := &recObs{}
	tm.SetTxObserver(t0.ID(), obs)
	a, b := mem.Alloc(1), mem.Alloc(1)

	first := true
	tm.Run(t0, func(tx *Tx) {
		_ = tx.Read(a)
		if first {
			first = false
			tm.Run(t1, func(tx2 *Tx) { tx2.Write(a, 9) })
		}
		_ = tx.Read(b)
		tx.Write(b, tx.Read(a)+1)
	})
	sawTagAbort := false
	for _, e := range obs.ends {
		if !e.committed && e.fromTags {
			sawTagAbort = true
		}
	}
	if !sawTagAbort {
		t.Fatalf("no tag abort observed: %+v", obs.ends)
	}
}

// TestObserverTagOverflow: with a one-entry tag set, a transaction
// touching two lines fires TxTagOverflow and still commits (value-based
// fallback).
func TestObserverTagOverflow(t *testing.T) {
	mem := vtags.New(1<<20, 1, vtags.WithMaxTags(1))
	tm := NewTagged(mem)
	th := mem.Thread(0)
	obs := &recObs{}
	tm.SetTxObserver(th.ID(), obs)
	// Two reads a full line apart: the second AddTag overflows the
	// one-entry tag set.
	a := mem.Alloc(16)
	tm.Run(th, func(tx *Tx) {
		_ = tx.Read(a)
		_ = tx.Read(a.Plus(8))
	})
	if obs.overflows == 0 {
		t.Fatal("no TxTagOverflow callback despite a one-entry tag set")
	}
	if last := obs.ends[len(obs.ends)-1]; !last.committed {
		t.Fatalf("overflowed transaction did not commit: %+v", obs.ends)
	}
	ov, _ := mem.TagStats()
	if ov == 0 {
		t.Fatal("vtags TagStats did not count the overflow")
	}
}
