package stm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vtags"
)

var tmVariants = []struct {
	name string
	mk   func(core.Memory) *TM
}{
	{"NOrec", NewNOrec},
	{"Tagged", NewTagged},
}

func forAllTMs(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, tm *TM)) {
	backends := []struct {
		name string
		mk   func(int) core.Memory
	}{
		{"vtags", func(n int) core.Memory { return vtags.New(8<<20, n) }},
		{"machine", func(n int) core.Memory {
			cfg := machine.DefaultConfig(n)
			cfg.MemBytes = 8 << 20
			return machine.New(cfg)
		}},
	}
	for _, b := range backends {
		for _, v := range tmVariants {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, v.mk(mem))
			})
		}
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	forAllTMs(t, 1, func(t *testing.T, mem core.Memory, tm *TM) {
		th := mem.Thread(0)
		a := mem.Alloc(1)
		tm.Run(th, func(tx *Tx) {
			if tx.Read(a) != 0 {
				t.Error("fresh word non-zero")
			}
			tx.Write(a, 7)
			if tx.Read(a) != 7 {
				t.Error("own write invisible")
			}
			tx.Write(a, 8)
			if tx.Read(a) != 8 {
				t.Error("overwrite invisible")
			}
		})
		if th.Load(a) != 8 {
			t.Fatal("committed value wrong")
		}
	})
}

func TestReadOnlyCommitsWithoutLock(t *testing.T) {
	forAllTMs(t, 1, func(t *testing.T, mem core.Memory, tm *TM) {
		th := mem.Thread(0)
		a := mem.Alloc(1)
		th.Store(a, 5)
		seqBefore := th.Load(tm.SeqAddr())
		tm.Run(th, func(tx *Tx) {
			if tx.Read(a) != 5 {
				t.Error("wrong value")
			}
		})
		if th.Load(tm.SeqAddr()) != seqBefore {
			t.Fatal("read-only transaction bumped the sequence lock")
		}
	})
}

func TestWriteBumpsSequence(t *testing.T) {
	forAllTMs(t, 1, func(t *testing.T, mem core.Memory, tm *TM) {
		th := mem.Thread(0)
		a := mem.Alloc(1)
		before := th.Load(tm.SeqAddr())
		tm.Run(th, func(tx *Tx) { tx.Write(a, 1) })
		after := th.Load(tm.SeqAddr())
		if after != before+2 || after%2 != 0 {
			t.Fatalf("seq %d -> %d, want +2 and even", before, after)
		}
	})
}

func TestAtomicTransfer(t *testing.T) {
	forAllTMs(t, 4, func(t *testing.T, mem core.Memory, tm *TM) {
		const accounts = 8
		const perThread = 150
		addrs := make([]core.Addr, accounts)
		th0 := mem.Thread(0)
		for i := range addrs {
			addrs[i] = mem.Alloc(1)
			th0.Store(addrs[i], 1000)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := mem.Thread(w)
				for i := 0; i < perThread; i++ {
					src := (w + i) % accounts
					dst := (w + i + 1 + i%3) % accounts
					if src == dst {
						continue
					}
					tm.Run(th, func(tx *Tx) {
						s := tx.Read(addrs[src])
						d := tx.Read(addrs[dst])
						tx.Write(addrs[src], s-10)
						tx.Write(addrs[dst], d+10)
					})
				}
			}(w)
		}
		wg.Wait()
		var sum uint64
		for _, a := range addrs {
			sum += th0.Load(a)
		}
		if sum != accounts*1000 {
			t.Fatalf("total = %d, want %d (lost or duplicated money)", sum, accounts*1000)
		}
	})
}

// Opacity: a reader transaction must never observe the two halves of an
// invariant-preserving update torn apart, even mid-transaction.
func TestOpacity(t *testing.T) {
	forAllTMs(t, 3, func(t *testing.T, mem core.Memory, tm *TM) {
		a, b := mem.Alloc(1), mem.Alloc(1)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(th core.Thread) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tm.Run(th, func(tx *Tx) {
						va := tx.Read(a)
						tx.Write(a, va+1)
						tx.Write(b, va+1)
					})
				}
			}(mem.Thread(w))
		}
		th := mem.Thread(2)
		for i := 0; i < 500; i++ {
			var va, vb uint64
			tm.Run(th, func(tx *Tx) {
				va = tx.Read(a)
				vb = tx.Read(b)
			})
			if va != vb {
				close(stop)
				wg.Wait()
				t.Fatalf("torn read: a=%d b=%d", va, vb)
			}
		}
		close(stop)
		wg.Wait()
	})
}

func TestAbortsAreCounted(t *testing.T) {
	forAllTMs(t, 2, func(t *testing.T, mem core.Memory, tm *TM) {
		a := mem.Alloc(1)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(th core.Thread) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					tm.Run(th, func(tx *Tx) {
						v := tx.Read(a)
						tx.Write(a, v+1)
					})
				}
			}(mem.Thread(w))
		}
		wg.Wait()
		if got := mem.Thread(0).Load(a); got != 600 {
			t.Fatalf("counter = %d, want 600", got)
		}
		if tm.Commits.Load() != 600 {
			t.Fatalf("commits = %d, want 600", tm.Commits.Load())
		}
	})
}

// TestTaggedValidationIsLocal pins the tagged variant's selling point: a
// read-only transaction with a quiet lock validates without re-reading its
// read set from memory.
func TestTaggedValidationIsLocal(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 8 << 20
	m := machine.New(cfg)
	tm := NewTagged(m)
	th := m.Thread(0)
	addrs := make([]core.Addr, 8)
	for i := range addrs {
		addrs[i] = m.Alloc(1)
	}
	// Warm up: one transaction that reads everything.
	tm.Run(th, func(tx *Tx) {
		for _, a := range addrs {
			tx.Read(a)
		}
	})
	// Each post-read check should be a Validate, not a re-read of the read
	// set: loads grow linearly (one per Read), not quadratically.
	before := m.Snapshot()
	tm.Run(th, func(tx *Tx) {
		for _, a := range addrs {
			tx.Read(a)
		}
	})
	after := m.Snapshot()
	loads := after.Loads - before.Loads
	// 8 data loads + seq reads + slack; value-based validation would cost
	// ~8+7+6+... extra loads.
	if loads > 20 {
		t.Fatalf("tagged read-only transaction issued %d loads; validation is not local", loads)
	}
	if after.Validates == before.Validates {
		t.Fatal("tagged transaction performed no tag validations")
	}
}

// TestTagOverflowFallsBack drops to value-based validation when the read
// set exceeds MaxTags, and must still be correct.
func TestTagOverflowFallsBack(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 8 << 20
	cfg.MaxTags = 4
	m := machine.New(cfg)
	tm := NewTagged(m)
	th := m.Thread(0)
	addrs := make([]core.Addr, 16) // far beyond MaxTags
	for i := range addrs {
		addrs[i] = m.Alloc(1)
		th.Store(addrs[i], uint64(i))
	}
	var sum uint64
	tm.Run(th, func(tx *Tx) {
		sum = 0
		for _, a := range addrs {
			sum += tx.Read(a)
		}
	})
	if sum != 120 {
		t.Fatalf("sum = %d, want 120", sum)
	}
	tm.Run(th, func(tx *Tx) {
		for i, a := range addrs {
			tx.Write(a, uint64(i*2))
		}
	})
	if th.Load(addrs[5]) != 10 {
		t.Fatal("overflowed writer transaction did not commit")
	}
}

func TestNestedPanicPropagates(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	tm := NewNOrec(mem)
	th := mem.Thread(0)
	defer func() {
		if r := recover(); r != "user panic" {
			t.Fatalf("recovered %v, want user panic", r)
		}
	}()
	tm.Run(th, func(tx *Tx) { panic("user panic") })
}
