package stm

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

// TestLinearizableCounter checks a shared transactional counter — the
// smallest possible NOrec workload, but one where every pair of writers
// conflicts — against the sequential counter model. inc-and-get records
// the value the committed attempt read (aborted attempts re-execute fn, so
// the captured old value is always from the final, committed execution).
func TestLinearizableCounter(t *testing.T) {
	variants := []struct {
		name  string
		newTM func(core.Memory) *TM
	}{
		{"norec", NewNOrec},
		{"tagged", NewTagged},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				runCounterLinearize(t, seed, v.newTM)
			}
		})
	}
}

func runCounterLinearize(t *testing.T, seed int64, newTM func(core.Memory) *TM) {
	t.Helper()
	const threads, opsPer = 4, 120
	fuzz := schedfuzz.Default(seed)
	mem := schedfuzz.Wrap(vtags.New(1<<20, threads), fuzz)
	tm := newTM(mem)
	ctr := mem.Alloc(1)
	rec := history.NewRecorder(threads, opsPer)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := mem.Thread(w)
			sh := rec.Shard(w)
			for n := 0; n < opsPer; n++ {
				if (n+w)%3 == 0 {
					idx := sh.Begin(history.OpRead, 0, 0)
					var v uint64
					tm.Run(th, func(tx *Tx) { v = tx.Read(ctr) })
					sh.End(idx, true, v)
					continue
				}
				idx := sh.Begin(history.OpIncGet, 0, 0)
				var old uint64
				tm.Run(th, func(tx *Tx) {
					old = tx.Read(ctr)
					tx.Write(ctr, old+1)
				})
				sh.End(idx, true, old)
			}
		}()
	}
	wg.Wait()

	out := linearizability.Check(linearizability.CounterModel(0), rec.Events())
	if out.Inconclusive {
		t.Fatalf("checker inconclusive after %d ops", out.Ops)
	}
	if !out.OK {
		t.Fatalf("counter history not linearizable:\n%s", out.Explain())
	}
	want := uint64(0)
	for _, e := range rec.Events() {
		if e.Op == history.OpIncGet {
			want++
		}
	}
	th := mem.Thread(0)
	var final uint64
	tm.Run(th, func(tx *Tx) { final = tx.Read(ctr) })
	if final != want {
		t.Fatalf("final counter %d, want %d (lost increments)", final, want)
	}
}
