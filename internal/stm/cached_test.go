package stm

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vtags"
)

// TestRunCachedTransfer is TestAtomicTransfer on the cached path: same
// semantics, reusable per-thread transactions.
func TestRunCachedTransfer(t *testing.T) {
	forAllTMs(t, 4, func(t *testing.T, mem core.Memory, tm *TM) {
		tm.Prepare(4)
		const accounts = 8
		const perThread = 150
		addrs := make([]core.Addr, accounts)
		th0 := mem.Thread(0)
		for i := range addrs {
			addrs[i] = mem.Alloc(1)
			th0.Store(addrs[i], 1000)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := mem.Thread(w)
				for i := 0; i < perThread; i++ {
					src := (w + i) % accounts
					dst := (w + i + 1 + i%3) % accounts
					if src == dst {
						continue
					}
					tm.RunCached(th, func(tx *Tx) {
						s := tx.Read(addrs[src])
						d := tx.Read(addrs[dst])
						tx.Write(addrs[src], s-10)
						tx.Write(addrs[dst], d+10)
					})
				}
			}(w)
		}
		wg.Wait()
		var sum uint64
		for _, a := range addrs {
			sum += th0.Load(a)
		}
		if sum != accounts*1000 {
			t.Fatalf("total = %d, want %d (lost or duplicated money)", sum, accounts*1000)
		}
	})
}

// TestRunCachedMixesWithRun checks a cached transaction sees writes from
// plain Run and vice versa (they share the same TM protocol state).
func TestRunCachedMixesWithRun(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	tm := NewTagged(mem)
	tm.Prepare(1)
	th := mem.Thread(0)
	a := mem.Alloc(1)
	tm.Run(th, func(tx *Tx) { tx.Write(a, 3) })
	var got uint64
	tm.RunCached(th, func(tx *Tx) {
		got = tx.Read(a)
		tx.Write(a, got+4)
	})
	if got != 3 {
		t.Fatalf("cached tx read %d, want 3", got)
	}
	tm.Run(th, func(tx *Tx) { got = tx.Read(a) })
	if got != 7 {
		t.Fatalf("plain tx read %d, want 7", got)
	}
}

// TestRunCachedAllocFree pins the point of the cached path: a steady-state
// read-modify-write transaction allocates nothing on the vtags backend.
func TestRunCachedAllocFree(t *testing.T) {
	for _, variant := range tmVariants {
		t.Run(variant.name, func(t *testing.T) {
			mem := vtags.New(1<<20, 1)
			tm := variant.mk(mem)
			tm.Prepare(1)
			th := mem.Thread(0)
			a := mem.Alloc(1)
			fn := func(tx *Tx) {
				v := tx.Read(a)
				tx.Write(a, v+1)
			}
			tm.RunCached(th, fn) // warm the write index and sets
			if n := testing.AllocsPerRun(200, func() {
				tm.RunCached(th, fn)
			}); n != 0 {
				t.Fatalf("RunCached allocates %.1f/op, want 0", n)
			}
		})
	}
}
