// Package stm implements the NOrec software transactional memory of
// Dalessandro, Spear and Scott (PPoPP 2010) over simulated memory, plus the
// paper's tagged variant (Section 5.2).
//
// NOrec has no ownership records: a single global sequence lock protects
// the commit protocol, writes are buffered in an indexed write set, and
// conflicts are detected by value-based validation (VBV) of the read set.
//
// The tagged variant tags every read-set line. A successful local tag
// validation proves the whole read set is unchanged, so readers stay
// consistent with zero coherence traffic — and, crucially, do not care
// about commits that touched none of their lines, where baseline NOrec
// must re-read its entire read set whenever the sequence lock moves. A
// failed tag validation aborts immediately (fail-fast, as the paper
// describes: "it would not need to perform value-based validation in order
// to simply fail"). Writers acquire the global lock with
// invalidate-and-swap on the lock line, so a doomed acquisition fails
// locally instead of stealing the line. Because tags are advisory
// (spurious evictions), a transaction that keeps failing its tag
// validation retries in value-based mode — the fallback path.
package stm

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/reclaim"
)

// tagAbortLimit is the number of consecutive tag-validation aborts after
// which a transaction retries in value-based (untagged) mode.
const tagAbortLimit = 3

// commitIASLimit bounds tagged lock-acquisition attempts before falling
// back to the CAS path.
const commitIASLimit = 4

// TM is one transactional memory instance (one global sequence lock).
type TM struct {
	mem    core.Memory
	seq    core.Addr
	tagged bool

	// FaultTornRead, when set on a tagged instance, disables the torn-read
	// guard in the tagged Read fast path: the read no longer waits for the
	// sequence lock to be free nor validates its tags, so values read can
	// span another writer's in-flight writeBack. This is exactly the
	// opacity bug PR 1's checker caught and fixed; it is kept injectable
	// so serializability suites can prove they would catch it again.
	// Testing only — never set in experiments.
	FaultTornRead bool

	// Aborts counts transaction attempt aborts, for experiment reporting.
	Aborts atomic.Uint64
	// TagAborts counts the subset of aborts triggered by a failed tag
	// validation (real conflicts and spurious evictions alike).
	TagAborts atomic.Uint64
	// Commits counts committed transactions.
	Commits atomic.Uint64

	// dom, when set, brackets every transaction attempt in a reclamation
	// domain so structures built on the TM can retire replaced nodes: an
	// optimistic reader's loads of a freed node are bounded by its next
	// validation, but the bracket keeps such nodes from being recycled
	// under a still-running attempt at all.
	dom *reclaim.Domain

	// cached holds one reusable Tx per thread id for RunCached; see
	// Prepare.
	cached []*Tx

	// obs holds per-thread attempt observers; see SetTxObserver.
	obs []TxObserver
}

// TxObserver receives per-attempt lifecycle events from transactions run by
// one thread: attempt begin, attempt outcome (committed, or aborted — with
// the tag-validation aborts distinguished from value-based ones), and
// tag-set overflow (the attempt degraded to value-based mode). The serve
// layer's span recorder implements it to attribute a slow request to its
// retry loop. Hooks run on the transaction's thread, inside the attempt's
// dynamic extent; they must not start transactions themselves.
type TxObserver interface {
	TxAttemptStart()
	TxAttemptEnd(committed, fromTags bool)
	TxTagOverflow()
}

// SetTxObserver installs o as thread id's attempt observer (nil removes
// it). Only call while the thread is quiescent. The hot path cost when no
// observer is installed is one nil check per attempt.
func (tm *TM) SetTxObserver(id int, o TxObserver) {
	if id < 0 {
		return
	}
	if id >= len(tm.obs) {
		grown := make([]TxObserver, id+1)
		copy(grown, tm.obs)
		tm.obs = grown
	}
	tm.obs[id] = o
}

// observer returns thread id's observer, or nil.
func (tm *TM) observer(id int) TxObserver {
	if id < 0 || id >= len(tm.obs) {
		return nil
	}
	return tm.obs[id]
}

// SetReclaim attaches a reclamation domain: every transaction attempt runs
// inside an Enter/Exit bracket on it. Only call while quiescent.
func (tm *TM) SetReclaim(d *reclaim.Domain) { tm.dom = d }

func (tm *TM) enter(th core.Thread) {
	if tm.dom != nil {
		tm.dom.Handle(th.ID()).Enter()
	}
}

func (tm *TM) exit(th core.Thread) {
	if tm.dom != nil {
		tm.dom.Handle(th.ID()).Exit()
	}
}

// NewNOrec creates a baseline NOrec instance.
func NewNOrec(mem core.Memory) *TM {
	return &TM{mem: mem, seq: mem.Alloc(1)}
}

// NewTagged creates a tagged NOrec instance.
func NewTagged(mem core.Memory) *TM {
	return &TM{mem: mem, seq: mem.Alloc(1), tagged: true}
}

// Tagged reports whether this instance uses memory tagging.
func (tm *TM) Tagged() bool { return tm.tagged }

// SeqAddr returns the global sequence lock's address (for tests).
func (tm *TM) SeqAddr() core.Addr { return tm.seq }

type writeEntry struct {
	addr core.Addr
	val  uint64
}

type readEntry struct {
	addr core.Addr
	val  uint64
}

// Tx is one transaction attempt. It must only be used inside the function
// passed to Run, on the thread Run was given.
type Tx struct {
	tm *TM
	th core.Thread

	v       uint64 // sequence number at which the read set is consistent
	reads   []readEntry
	writes  []writeEntry
	wIndex  map[core.Addr]int
	useTags bool

	// Attempt-scoped hooks (OnCommit/OnAbort), run after the attempt's
	// bracket closes: structures defer node retires to commit time and
	// reclaim speculative allocations on abort.
	commitHooks []func()
	abortHooks  []func()

	// consecutive tag-validation aborts; survives across attempts so a
	// pathological tag set degrades to value-based mode.
	tagAborts int

	// obs is the attempt's observer (set by runOnce from the TM's
	// per-thread table), reachable from dropTags.
	obs TxObserver
}

// abortSentinel unwinds an aborted transaction attempt back to Run.
type abortSentinel struct{ fromTags bool }

// Thread returns the thread this transaction runs on (for hooks that need
// it, e.g. pool retires).
func (tx *Tx) Thread() core.Thread { return tx.th }

// Run executes fn transactionally, retrying on conflict until it commits.
// fn may be invoked multiple times; it must touch shared state only through
// tx.Read and tx.Write.
func (tm *TM) Run(th core.Thread, fn func(tx *Tx)) {
	tx := &Tx{tm: tm, th: th}
	for {
		if tm.runOnce(tx, fn) {
			tm.Commits.Add(1)
			return
		}
		tm.Aborts.Add(1)
	}
}

// Prepare preallocates one reusable transaction per thread id for
// RunCached. Call once, while quiescent, before any RunCached call.
func (tm *TM) Prepare(threads int) {
	tm.cached = make([]*Tx, threads)
	for i := range tm.cached {
		tm.cached[i] = &Tx{tm: tm, wIndex: make(map[core.Addr]int, 8)}
	}
}

// RunCached is Run on the calling thread's preallocated transaction: the
// read/write sets, the write index, and the Tx itself are reused across
// calls, so steady-state transactions allocate nothing. Requires a prior
// Prepare(threads) with threads > th.ID(); at most one goroutine may use a
// given thread id at a time (the same ownership rule as the thread handle
// itself). Semantics are identical to Run.
func (tm *TM) RunCached(th core.Thread, fn func(tx *Tx)) {
	tx := tm.cached[th.ID()]
	tx.th = th
	for {
		if tm.runOnce(tx, fn) {
			tm.Commits.Add(1)
			return
		}
		tm.Aborts.Add(1)
	}
}

// runOnce runs a single attempt, reporting whether it committed.
func (tm *TM) runOnce(tx *Tx, fn func(tx *Tx)) (committed bool) {
	tx.obs = tm.observer(tx.th.ID())
	if tx.obs != nil {
		tx.obs.TxAttemptStart()
	}
	tm.enter(tx.th)
	tx.begin()
	defer func() {
		tx.th.ClearTagSet()
		tm.exit(tx.th)
		if r := recover(); r != nil {
			if a, ok := r.(abortSentinel); ok {
				if a.fromTags {
					tx.tagAborts++
					tm.TagAborts.Add(1)
				} else {
					tx.tagAborts = 0
				}
				committed = false
				if tx.obs != nil {
					tx.obs.TxAttemptEnd(false, a.fromTags)
				}
				tx.runHooks(false)
				return
			}
			panic(r)
		}
		tx.tagAborts = 0
		if tx.obs != nil {
			tx.obs.TxAttemptEnd(true, false)
		}
		tx.runHooks(true)
	}()
	fn(tx)
	tx.commit()
	return true
}

// OnCommit registers f to run once, outside the transaction, if this
// attempt commits. Hooks are discarded when the attempt aborts.
func (tx *Tx) OnCommit(f func()) { tx.commitHooks = append(tx.commitHooks, f) }

// OnAbort registers f to run once, outside the transaction, if this attempt
// aborts (each retried attempt re-registers its own hooks).
func (tx *Tx) OnAbort(f func()) { tx.abortHooks = append(tx.abortHooks, f) }

// runHooks fires the attempt's hooks after its bracket has closed.
func (tx *Tx) runHooks(committed bool) {
	hooks := tx.abortHooks
	if committed {
		hooks = tx.commitHooks
	}
	for _, f := range hooks {
		f()
	}
	tx.commitHooks = tx.commitHooks[:0]
	tx.abortHooks = tx.abortHooks[:0]
}

// begin is TXBegin: record the sequence number at which we start. The
// tagged variant begins tagging its read set as it grows; after repeated
// tag-validation aborts the attempt runs in value-based mode (the
// advisory-tags fallback).
func (tx *Tx) begin() {
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	clear(tx.wIndex) // keep the map: reattempts and cached txs reuse it
	tx.commitHooks = tx.commitHooks[:0]
	tx.abortHooks = tx.abortHooks[:0]
	tx.useTags = tx.tm.tagged && tx.tagAborts < tagAbortLimit
	tx.th.ClearTagSet()
	tx.v = tx.spinSeq()
}

// dropTags downgrades the attempt to value-based validation only
// (tag-set overflow: the hardware's graceful degradation path).
func (tx *Tx) dropTags() {
	if tx.obs != nil {
		tx.obs.TxTagOverflow()
	}
	tx.th.ClearTagSet()
	tx.useTags = false
	// The sequence lock may have moved while tags covered consistency;
	// re-establish the value-based invariant.
	if tx.th.Load(tx.tm.seq) != tx.v {
		tx.validate()
	}
}

// spinSeq is ReadSequence: wait until the global lock is unlocked (even)
// and return it.
func (tx *Tx) spinSeq() uint64 {
	for {
		v := tx.th.Load(tx.tm.seq)
		if v%2 == 0 {
			return v
		}
	}
}

// Read is TXRead: return the transactionally consistent value at a.
func (tx *Tx) Read(a core.Addr) uint64 {
	if i, ok := tx.wIndex[a]; ok {
		return tx.writes[i].val
	}
	if tx.useTags {
		if !tx.th.AddTag(a, core.WordSize) {
			tx.dropTags()
		}
	}
	v := tx.th.Load(a)
	if tx.useTags && tx.tm.FaultTornRead {
		// Injected opacity bug (see TM.FaultTornRead): skip the
		// lock-free wait and the tag validation.
		tx.reads = append(tx.reads, readEntry{addr: a, val: v})
		return v
	}
	if tx.useTags {
		// Fast path: every read-set line (including a's) is tagged. If
		// none was invalidated, every recorded value — and v — is current
		// at this instant: commits that did not touch our lines are
		// irrelevant, so (unlike baseline NOrec) the lock moving to a new
		// even value costs nothing. The lock being *held* is different:
		// values read while a writer is mid-writeBack can span its
		// partial commit, and tag validation alone cannot rule that out
		// (a line tagged after the writer stored it validates fine). Wait
		// until the lock is free, then validate — any of our lines the
		// writer touched shows up as an invalidated tag. A failed
		// validation aborts immediately, with no value-based
		// re-validation.
		for tx.th.Load(tx.tm.seq)%2 != 0 {
		}
		if tx.th.Validate() {
			tx.reads = append(tx.reads, readEntry{addr: a, val: v})
			return v
		}
		panic(abortSentinel{fromTags: true})
	}
	for tx.th.Load(tx.tm.seq) != tx.v {
		tx.validate()
		v = tx.th.Load(a)
	}
	tx.reads = append(tx.reads, readEntry{addr: a, val: v})
	return v
}

// ReadSet invokes f for every read-set entry of the current attempt: the
// address and the value the transaction observed there. Reads satisfied
// from the transaction's own write buffer are not in the read set. Called
// after Run returns, it yields the committed attempt's footprint (begin
// resets the sets only when a new attempt starts) — history recorders use
// exactly that to emit history.OpTx events.
func (tx *Tx) ReadSet(f func(a core.Addr, v uint64)) {
	for i := range tx.reads {
		f(tx.reads[i].addr, tx.reads[i].val)
	}
}

// WriteSet invokes f for every write-set entry of the current attempt:
// the address and the final value the transaction installed there (one
// entry per address; earlier buffered values are superseded).
func (tx *Tx) WriteSet(f func(a core.Addr, v uint64)) {
	for i := range tx.writes {
		f(tx.writes[i].addr, tx.writes[i].val)
	}
}

// validate is TXValidate's value-based validation: establish a new
// sequence number at which the entire read set is consistent, or abort.
func (tx *Tx) validate() {
	for {
		time := tx.spinSeq()
		for i := range tx.reads {
			e := &tx.reads[i]
			if tx.th.Load(e.addr) != e.val {
				panic(abortSentinel{})
			}
		}
		if tx.th.Load(tx.tm.seq) == time {
			tx.v = time
			return
		}
	}
}

// Write is TXWrite: buffer the store in the indexed write set.
func (tx *Tx) Write(a core.Addr, v uint64) {
	if tx.wIndex == nil {
		tx.wIndex = make(map[core.Addr]int, 8)
	}
	if i, ok := tx.wIndex[a]; ok {
		tx.writes[i].val = v
		return
	}
	tx.wIndex[a] = len(tx.writes)
	tx.writes = append(tx.writes, writeEntry{addr: a, val: v})
}

// commit is TXCommit. Read-only transactions commit immediately (their
// consistency was maintained read-by-read). Writers acquire the sequence
// lock, replay the write buffer, and release.
//
// The tagged acquisition: clear the read-set tags (their job is done — the
// set is known consistent as of sequence number tx.v), tag the lock line,
// check it still holds tx.v, and IAS it to tx.v+1. Success proves no other
// writer committed since tx.v, which is exactly NOrec's commit condition —
// with the difference that a failed acquisition is detected locally
// instead of through a coherence round trip.
func (tx *Tx) commit() {
	if len(tx.writes) == 0 {
		return
	}
	th, tm := tx.th, tx.tm
	if tx.useTags {
		// The fast path above kept the read set consistent, but tx.v may
		// be stale (commits that didn't touch us moved the lock). Settle
		// the value-based invariant once before acquiring.
		th.ClearTagSet()
		if th.Load(tm.seq) != tx.v {
			tx.validate()
		}
		for attempt := 0; attempt < commitIASLimit; attempt++ {
			if !th.AddTag(tm.seq, core.WordSize) {
				break
			}
			if th.Load(tm.seq) == tx.v && th.IAS(tm.seq, tx.v+1) {
				th.ClearTagSet()
				tx.writeBack()
				return
			}
			th.ClearTagSet()
			tx.validate()
		}
		// Advisory-tags fallback: finish with the software protocol.
	}
	for !th.CAS(tm.seq, tx.v, tx.v+1) {
		tx.validate()
	}
	tx.writeBack()
}

// writeBack replays the write buffer and releases the lock; the caller has
// acquired the sequence lock at tx.v+1.
func (tx *Tx) writeBack() {
	for i := range tx.writes {
		tx.th.Store(tx.writes[i].addr, tx.writes[i].val)
	}
	tx.th.Store(tx.tm.seq, tx.v+2)
}
