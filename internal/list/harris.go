package list

import (
	"repro/internal/core"
	"repro/internal/intset"
)

// Harris is the lock-free Harris-Michael linked list with pointer marking:
// a node is logically deleted by CASing the mark bit into its next pointer,
// then physically unlinked (by the deleter or by helping traversals). This
// is the paper's software baseline and the natural fallback path for the
// tagged variants.
type Harris struct {
	mem  core.Memory
	head core.Addr
}

var _ intset.Set = (*Harris)(nil)

// NewHarris creates an empty list.
func NewHarris(mem core.Memory) *Harris {
	return &Harris{mem: mem, head: newSentinels(mem.Thread(0), nodeWords)}
}

// locate returns adjacent unmarked nodes pred, curr with
// pred.key < key <= curr.key, physically unlinking marked nodes it passes
// (Michael's helping).
func (s *Harris) locate(th core.Thread, key uint64) (pred, curr core.Addr) {
	return harrisLocate(th, s.head, key)
}

// harrisLocate is the CAS-based locate over any marked list rooted at
// head; it is shared with the Elided list's slow path.
func harrisLocate(th core.Thread, head core.Addr, key uint64) (pred, curr core.Addr) {
retry:
	for {
		pred = head
		curr = core.Addr(clearMark(th.Load(nextAddr(pred))))
		for {
			nextW := th.Load(nextAddr(curr))
			for isMarked(nextW) {
				// curr is logically deleted: help unlink it.
				succ := clearMark(nextW)
				if !th.CAS(nextAddr(pred), uint64(curr), succ) {
					continue retry
				}
				curr = core.Addr(succ)
				nextW = th.Load(nextAddr(curr))
			}
			if th.Load(keyAddr(curr)) >= key {
				return pred, curr
			}
			pred = curr
			curr = core.Addr(clearMark(nextW))
		}
	}
}

// Insert adds key, reporting whether it was absent.
func (s *Harris) Insert(th core.Thread, key uint64) bool {
	return harrisInsert(th, s.head, key)
}

// harrisInsert is the CAS-based insert shared with the Elided slow path.
func harrisInsert(th core.Thread, head core.Addr, key uint64) bool {
	for {
		pred, curr := harrisLocate(th, head, key)
		if th.Load(keyAddr(curr)) == key {
			return false
		}
		node := newNode(th, nodeWords, key, curr)
		if th.CAS(nextAddr(pred), uint64(curr), uint64(node)) {
			return true
		}
	}
}

// Delete removes key, reporting whether it was present.
func (s *Harris) Delete(th core.Thread, key uint64) bool {
	return harrisDelete(th, s.head, key)
}

// harrisDelete is the CAS-based delete shared with the Elided slow path.
func harrisDelete(th core.Thread, head core.Addr, key uint64) bool {
	for {
		pred, curr := harrisLocate(th, head, key)
		if th.Load(keyAddr(curr)) != key {
			return false
		}
		nextW := th.Load(nextAddr(curr))
		if isMarked(nextW) {
			// Concurrently deleted; retry to settle who logically removed it.
			continue
		}
		// Logical delete: set the mark bit.
		if !th.CAS(nextAddr(curr), nextW, withMark(nextW)) {
			continue
		}
		// Physical unlink (best effort; helping will finish otherwise).
		th.CAS(nextAddr(pred), uint64(curr), clearMark(nextW))
		return true
	}
}

// Contains reports whether key is present (wait-free traversal, no
// helping).
func (s *Harris) Contains(th core.Thread, key uint64) bool {
	curr := core.Addr(clearMark(th.Load(nextAddr(s.head))))
	for th.Load(keyAddr(curr)) < key {
		curr = core.Addr(clearMark(th.Load(nextAddr(curr))))
	}
	return th.Load(keyAddr(curr)) == key && !isMarked(th.Load(nextAddr(curr)))
}

// Keys enumerates the set while quiescent.
func (s *Harris) Keys(th core.Thread) []uint64 { return keysFrom(th, s.head) }
