package list

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/intset"
)

// Elided wires the paper's HLE-style fallback path (Section 3) around the
// VAS-based list: updates attempt the tagged fast path (Algorithm 1) up to
// a threshold of consecutive failures, then flip the shared Mode line to
// SLOW and complete on the plain Harris-Michael CAS path. Both paths share
// the node layout (marked next pointers), which is why the paper calls
// marking-based designs "correct fall-back paths for MemTag-based data
// structures":
//
//   - every fast-path commit includes the Mode line in its tag set, so the
//     switch to SLOW invalidates all in-flight fast-path commits;
//   - slow-path CASes invalidate tagged lines like any other write, so
//     remaining fast-path attempts observe slow-path updates.
//
// The structure therefore guarantees progress under arbitrary spurious
// validation failures (e.g. a pathologically small L1), which pure tagging
// cannot.
type Elided struct {
	vas *VAS
	fb  *core.Fallback

	// FastCommits / SlowCommits count where updates completed, for tests
	// and fallback-rate experiments.
	FastCommits atomic.Uint64
	SlowCommits atomic.Uint64
}

var _ intset.Set = (*Elided)(nil)

// NewElided creates an empty list; threshold is the number of fast-path
// attempts per operation before falling back (0 selects the default).
func NewElided(mem core.Memory, threshold int) *Elided {
	fb := core.NewFallback(mem)
	if threshold > 0 {
		fb.Threshold = threshold
	}
	return &Elided{vas: NewVAS(mem), fb: fb}
}

// guard returns the fast-path commit guard: it joins the Mode line to the
// current tag set and checks the mode is still FAST, so the attempt's
// VAS/IAS validates the mode together with the data.
func (s *Elided) guard(th core.Thread) func() bool {
	return func() bool {
		if !th.AddTag(s.fb.ModeAddr(), core.WordSize) {
			return false
		}
		return th.Load(s.fb.ModeAddr()) == core.ModeFast
	}
}

// update runs one operation: fast attempts, then the slow path.
func (s *Elided) update(th core.Thread,
	fast func(guard func() bool) (done, result bool),
	slow func() bool) bool {

	g := s.guard(th)
	for attempt := 0; attempt < s.fb.Threshold; attempt++ {
		if th.Load(s.fb.ModeAddr()) != core.ModeFast {
			break
		}
		if done, result := fast(g); done {
			s.FastCommits.Add(1)
			return result
		}
	}
	s.fb.EnterSlow(th)
	result := slow()
	s.fb.ExitSlow(th)
	s.SlowCommits.Add(1)
	return result
}

// Insert adds key, reporting whether it was absent.
func (s *Elided) Insert(th core.Thread, key uint64) bool {
	return s.update(th,
		func(g func() bool) (bool, bool) { return s.vas.insertOnce(th, key, g) },
		func() bool { return harrisInsert(th, s.vas.head, key) })
}

// Delete removes key, reporting whether it was present.
func (s *Elided) Delete(th core.Thread, key uint64) bool {
	return s.update(th,
		func(g func() bool) (bool, bool) { return s.vas.deleteOnce(th, key, g) },
		func() bool { return harrisDelete(th, s.vas.head, key) })
}

// Contains reports whether key is present. Reads need no elision: the
// traversal is identical on both paths and performs no tagged commits.
func (s *Elided) Contains(th core.Thread, key uint64) bool {
	return s.vas.Contains(th, key)
}

// Keys enumerates the set while quiescent.
func (s *Elided) Keys(th core.Thread) []uint64 { return s.vas.Keys(th) }

// ModeAddr exposes the Mode line for tests.
func (s *Elided) ModeAddr() core.Addr { return s.fb.ModeAddr() }
