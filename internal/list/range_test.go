package list

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

func TestRangeQueryBasic(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := NewHoH(mem)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		s.Insert(th, k)
	}
	keys, ok := s.RangeQuery(th, 15, 45, 8)
	if !ok {
		t.Fatal("uncontended range query failed")
	}
	want := []uint64{20, 30, 40}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
	if th.TagCount() != 0 {
		t.Fatal("range query leaked tags")
	}
}

func TestRangeQueryEdges(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := NewHoH(mem)
	th := mem.Thread(0)
	for _, k := range []uint64{10, 20, 30} {
		s.Insert(th, k)
	}
	if keys, ok := s.RangeQuery(th, 31, 99, 8); !ok || len(keys) != 0 {
		t.Fatalf("empty range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 50, 40, 8); !ok || len(keys) != 0 {
		t.Fatalf("inverted range: %v ok=%v", keys, ok)
	}
	if keys, ok := s.RangeQuery(th, 10, 30, 8); !ok || len(keys) != 3 {
		t.Fatalf("inclusive bounds: %v ok=%v", keys, ok)
	}
	// Whole key space including beyond the largest key.
	if keys, ok := s.RangeQuery(th, 1, ^uint64(0)-1, 8); !ok || len(keys) != 3 {
		t.Fatalf("full range: %v ok=%v", keys, ok)
	}
}

func TestRangeQueryTagBudget(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 4 << 20
	cfg.MaxTags = 8
	m := machine.New(cfg)
	s := NewHoH(m)
	th := m.Thread(0)
	for k := uint64(1); k <= 30; k++ {
		s.Insert(th, k)
	}
	if _, ok := s.RangeQuery(th, 1, 30, 4); ok {
		t.Fatal("range beyond tag budget reported atomic success")
	}
	if keys, ok := s.RangeQuery(th, 1, 4, 8); !ok || len(keys) != 4 {
		t.Fatalf("small range failed under tight budget: %v ok=%v", keys, ok)
	}
	// The fallback scan still works for the big range.
	if keys := s.RangeScan(th, 1, 30); len(keys) != 30 {
		t.Fatalf("fallback scan returned %d keys", len(keys))
	}
}

// Writers keep pairs (k, k+1) inserted/deleted together; an atomic range
// snapshot must never see one without the other.
func TestRangeQueryAtomicity(t *testing.T) {
	const pairs = 4
	mem := vtags.New(8<<20, 3)
	s := NewHoH(mem)
	t0 := mem.Thread(0)
	for i := 0; i < pairs; i++ {
		s.Insert(t0, uint64(10*i+1))
		s.Insert(t0, uint64(10*i+2))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(th core.Thread, base uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Delete(th, base+1)
				s.Delete(th, base+2)
				s.Insert(th, base+1)
				s.Insert(th, base+2)
			}
		}(mem.Thread(w), uint64(10*(w-1)))
	}
	reader := mem.Thread(0)
	checked := 0
	for i := 0; i < 3000 && checked < 50; i++ {
		keys, ok := s.RangeQuery(reader, 1, 100, 4)
		if !ok {
			continue
		}
		checked++
		seen := map[uint64]bool{}
		for _, k := range keys {
			seen[k] = true
		}
		// Writers remove pair element 1 first and reinsert it first...
		// deletion order is (base+1, base+2), insertion order (base+1,
		// base+2): the invariant a snapshot must respect is that element 2
		// present implies element 1 present OR element 1 is mid-cycle —
		// too weak. Instead check the strong invariant on the untouched
		// pairs (bases 20, 30): always fully present.
		for _, base := range []uint64{21, 22, 31, 32} {
			if !seen[base] {
				close(stop)
				wg.Wait()
				t.Fatalf("snapshot lost stable key %d: %v", base, keys)
			}
		}
	}
	close(stop)
	wg.Wait()
	if checked == 0 {
		t.Fatal("no range query ever validated under contention")
	}
}

// TestSnapshotLinearizable checks HoH-list histories mixing point ops with
// atomic range scans and whole-set snapshots against the whole-set
// sequential model, under schedule fuzzing with forced spurious evictions.
func TestSnapshotLinearizable(t *testing.T) {
	newMem := func(threads int) core.Memory {
		return vtags.New(16<<20, threads, vtags.WithMaxTags(64))
	}
	build := func(m core.Memory) intset.Set { return NewHoH(m) }
	for seed := int64(1); seed <= 2; seed++ {
		fuzz := schedfuzz.Default(seed)
		intset.CheckSnapshotLinearizable(t, newMem, build, intset.SnapshotConfig{
			Threads:      3,
			OpsPerThread: intset.LinearizeOps(90),
			KeyRange:     16,
			Prefill:      6,
			Seed:         seed,
			Fuzz:         &fuzz,
		})
	}
}
