package list

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

// variants enumerates every list implementation under a constructor.
var variants = []struct {
	name string
	mk   func(core.Memory) intset.Set
}{
	{"Harris", func(m core.Memory) intset.Set { return NewHarris(m) }},
	{"VAS", func(m core.Memory) intset.Set { return NewVAS(m) }},
	{"HoH", func(m core.Memory) intset.Set { return NewHoH(m) }},
	{"Lock", func(m core.Memory) intset.Set { return NewLock(m) }},
}

// backends enumerates the two memory implementations.
var backends = []struct {
	name string
	mk   func(threads int) core.Memory
}{
	{"vtags", func(threads int) core.Memory { return vtags.New(8<<20, threads) }},
	{"machine", func(threads int) core.Memory {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 8 << 20
		return machine.New(cfg)
	}},
}

func forAll(t *testing.T, threads int, f func(t *testing.T, mem core.Memory, s intset.Set)) {
	for _, b := range backends {
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", b.name, v.name), func(t *testing.T) {
				mem := b.mk(threads)
				f(t, mem, v.mk(mem))
			})
		}
	}
}

func TestEmpty(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if s.Contains(th, 5) {
			t.Fatal("empty set contains 5")
		}
		if s.Delete(th, 5) {
			t.Fatal("delete from empty set succeeded")
		}
	})
}

func TestInsertDeleteContains(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		if !s.Insert(th, 10) || !s.Insert(th, 5) || !s.Insert(th, 20) {
			t.Fatal("fresh inserts failed")
		}
		if s.Insert(th, 10) {
			t.Fatal("duplicate insert succeeded")
		}
		for _, k := range []uint64{5, 10, 20} {
			if !s.Contains(th, k) {
				t.Fatalf("missing key %d", k)
			}
		}
		if s.Contains(th, 15) {
			t.Fatal("contains absent key")
		}
		if !s.Delete(th, 10) {
			t.Fatal("delete of present key failed")
		}
		if s.Delete(th, 10) {
			t.Fatal("double delete succeeded")
		}
		if s.Contains(th, 10) {
			t.Fatal("deleted key still present")
		}
		if !s.Contains(th, 5) || !s.Contains(th, 20) {
			t.Fatal("neighbours lost by delete")
		}
	})
}

func TestBoundaryKeys(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for _, k := range []uint64{intset.KeyMin, intset.KeyMax} {
			if !s.Insert(th, k) || !s.Contains(th, k) {
				t.Fatalf("boundary key %d not inserted", k)
			}
			if !s.Delete(th, k) || s.Contains(th, k) {
				t.Fatalf("boundary key %d not deleted", k)
			}
		}
	})
}

func TestKeysSortedSnapshot(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		th := mem.Thread(0)
		for _, k := range []uint64{9, 3, 7, 1, 5} {
			s.Insert(th, k)
		}
		s.Delete(th, 7)
		keys := s.(intset.Snapshotter).Keys(th)
		want := []uint64{1, 3, 5, 9}
		if len(keys) != len(want) {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", keys, want)
			}
		}
	})
}

func TestSequentialEquivalence(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 2000, 64, 42)
	})
}

func TestSequentialEquivalenceWideRange(t *testing.T) {
	forAll(t, 1, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckSequential(t, mem, s, 1000, 1<<40, 7)
	})
}

func TestDisjointConcurrent(t *testing.T) {
	forAll(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckDisjointConcurrent(t, mem, s, 4, 400)
	})
}

func TestMixedConcurrent(t *testing.T) {
	forAll(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 300, 32)
	})
}

func TestMixedConcurrentTiny(t *testing.T) {
	// Maximum contention: 4 threads on 4 keys.
	forAll(t, 4, func(t *testing.T, mem core.Memory, s intset.Set) {
		intset.CheckMixedConcurrent(t, mem, s, 4, 200, 4)
	})
}

// TestHoHTagHygiene ensures HoH operations never leak tags.
func TestHoHTagHygiene(t *testing.T) {
	mem := vtags.New(1<<20, 1)
	s := NewHoH(mem)
	th := mem.Thread(0)
	ops := []func(){
		func() { s.Insert(th, 5) },
		func() { s.Contains(th, 5) },
		func() { s.Insert(th, 9) },
		func() { s.Delete(th, 5) },
		func() { s.Delete(th, 123) },
		func() { s.Contains(th, 9) },
	}
	for i, op := range ops {
		op()
		if th.TagCount() != 0 {
			t.Fatalf("op %d leaked %d tags", i, th.TagCount())
		}
	}
}

// TestHoHDeleteInvalidatesTraversal pins the paper's core synchronization
// rule: a HoH delete IAS-invalidates the removed node, so a concurrent
// thread holding a tag on it fails validation.
func TestHoHDeleteInvalidatesTraversal(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	s := NewHoH(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	s.Insert(t0, 10)
	s.Insert(t0, 20)

	// t1 simulates a traversal paused while holding a tag on node 10.
	node10 := findNode(t1, s.head, 10)
	t1.AddTag(node10, nodeBytes)
	if !t1.Validate() {
		t.Fatal("tag on live node invalid")
	}

	if !s.Delete(t0, 10) {
		t.Fatal("delete failed")
	}
	if t1.Validate() {
		t.Fatal("IAS delete did not invalidate the removed node at other cores")
	}
	t1.ClearTagSet()
}

// TestHoHWhyIASIsNeeded demonstrates the Figure 1 counterexample: if the
// delete were performed with VAS (no invalidation of the removed node), a
// paused traversal holding tags only on the removed node and its successor
// would validate successfully and insert into a deleted region.
func TestHoHWhyIASIsNeeded(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	s := NewHoH(mem)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	s.Insert(t0, 10)
	s.Insert(t0, 20)

	node10 := findNode(t1, s.head, 10)
	t1.AddTag(node10, nodeBytes)

	// A hypothetical VAS-only delete of 10: swing head.next to node 20
	// while tagging only the head (not invalidating node 10).
	node20 := findNode(t0, s.head, 20)
	t0.AddTag(s.head, nodeBytes)
	if !t0.VAS(nextAddr(s.head), uint64(node20)) {
		t.Fatal("setup VAS failed")
	}
	t0.ClearTagSet()

	// t1 still validates: it cannot tell node 10 was removed. This is the
	// incorrect outcome IAS prevents, and why the paper's delete must use
	// invalidate-and-swap.
	if !t1.Validate() {
		t.Skip("backend invalidated anyway; counterexample needs VAS-only delete")
	}
	t1.ClearTagSet()
}

// findNode walks the list (quiescent) and returns the node with the key.
func findNode(th core.Thread, head core.Addr, key uint64) core.Addr {
	curr := head
	for !curr.IsNil() {
		if th.Load(keyAddr(curr)) == key {
			return curr
		}
		curr = core.Addr(clearMark(th.Load(nextAddr(curr))))
	}
	panic("key not found")
}

// TestHarrisHelpsUnlink checks that a traversal physically unlinks a
// logically deleted node.
func TestHarrisHelpsUnlink(t *testing.T) {
	mem := vtags.New(1<<20, 2)
	s := NewHarris(mem)
	th := mem.Thread(0)
	s.Insert(th, 10)
	s.Insert(th, 20)

	// Mark node 10 by hand (logical delete without unlinking).
	node10 := findNode(th, s.head, 10)
	next := th.Load(nextAddr(node10))
	if !th.CAS(nextAddr(node10), next, withMark(next)) {
		t.Fatal("manual mark failed")
	}
	if s.Contains(th, 10) {
		t.Fatal("marked node still reported present")
	}
	// A locate-based op must unlink it in passing.
	s.Insert(mem.Thread(1), 30)
	if got := core.Addr(clearMark(th.Load(nextAddr(s.head)))); got == node10 {
		t.Fatal("marked node not unlinked by helping traversal")
	}
}

// TestVASDeleteUsesTags ensures the VAS list actually exercises VAS (its
// point) rather than silently falling back to CAS.
func TestVASDeleteUsesTags(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	s := NewVAS(m)
	th := m.Thread(0)
	s.Insert(th, 5)
	s.Delete(th, 5)
	if m.Snapshot().VASAttempts == 0 {
		t.Fatal("VAS list performed no VAS operations")
	}
}

// TestHoHUsesIASOnDelete ensures the HoH delete path goes through IAS.
func TestHoHUsesIASOnDelete(t *testing.T) {
	cfg := machine.DefaultConfig(1)
	cfg.MemBytes = 1 << 20
	m := machine.New(cfg)
	s := NewHoH(m)
	th := m.Thread(0)
	s.Insert(th, 5)
	s.Delete(th, 5)
	snap := m.Snapshot()
	if snap.IASAttempts == 0 {
		t.Fatal("HoH delete performed no IAS")
	}
}

// TestLockListMutualExclusion: concurrent inserts of interleaved keys under
// locking never lose nodes.
func TestLockListMutualExclusion(t *testing.T) {
	mem := vtags.New(8<<20, 4)
	s := NewLock(mem)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := mem.Thread(w)
			for i := 0; i < 200; i++ {
				s.Insert(th, uint64(i*4+w+1))
			}
		}(w)
	}
	wg.Wait()
	th := mem.Thread(0)
	for i := 0; i < 800; i++ {
		if !s.Contains(th, uint64(i+1)) {
			t.Fatalf("key %d lost", i+1)
		}
	}
}

// TestHoHOnSimulatorSmoke runs a short mixed workload of the HoH list on
// the full machine backend with several cores.
func TestHoHOnSimulatorSmoke(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 8 << 20
	m := machine.New(cfg)
	s := NewHoH(m)
	intset.CheckMixedConcurrent(t, m, s, 4, 150, 16)
	snap := m.Snapshot()
	if snap.Validates == 0 || snap.TagAdds == 0 {
		t.Fatal("HoH on machine produced no tag activity")
	}
}
