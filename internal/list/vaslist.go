package list

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
)

// VAS is Algorithm 1 of the paper: the Harris-Michael marked list where
// value-based validation is complemented by tag validation and every
// pointer swing is a validate-and-swap. Failed updates are detected locally
// at the core (the tag was invalidated) instead of through extra coherence
// traffic, which is where the speedup over the CAS baseline comes from.
type VAS struct {
	mem  core.Memory
	head core.Addr
	pool *reclaim.Pool
}

var _ intset.Set = (*VAS)(nil)

// NewVAS creates an empty list.
func NewVAS(mem core.Memory) *VAS {
	return &VAS{mem: mem, head: newSentinels(mem.Thread(0), nodeWords)}
}

// SetReclaim wires a reclamation pool (object size nodeWords): nodes are
// allocated from it and unlinked nodes are retired into it. The memory
// must have the pool's domain attached (SetReclaim on the backend) so tag
// announcements flow. Only call while quiescent, before operations.
func (s *VAS) SetReclaim(p *reclaim.Pool) { s.pool = p }

// helpUnlink unlinks the marked node curr from pred using tags + VAS
// (Algorithm 1, HelpIfNeeded); locate restarts afterwards. The VAS
// validates that pred still pointed at curr when tagged, so exactly one
// helper's swing succeeds — that helper retires curr.
func (s *VAS) helpUnlink(th core.Thread, pred, curr core.Addr) {
	th.AddTag(pred, nodeBytes)
	predNext := th.Load(nextAddr(pred))
	if isMarked(predNext) || core.Addr(clearMark(predNext)) != curr {
		th.ClearTagSet()
		return
	}
	th.AddTag(curr, nodeBytes)
	// Marked nodes never change, so succ is the same for all helpers.
	succ := clearMark(th.Load(nextAddr(curr)))
	if th.VAS(nextAddr(pred), succ) {
		th.ClearTagSet()
		retire(s.pool, th, curr)
		return
	}
	th.ClearTagSet()
}

// locate returns pred, curr with pred.key < key <= curr.key. It performs no
// tagging itself (Algorithm 1's LOCATE), but helps unlink marked nodes via
// tags + VAS.
func (s *VAS) locate(th core.Thread, key uint64) (pred, curr core.Addr) {
retry:
	for {
		pred = s.head
		curr = core.Addr(clearMark(th.Load(nextAddr(pred))))
		for {
			nextW := th.Load(nextAddr(curr))
			if isMarked(nextW) {
				s.helpUnlink(th, pred, curr)
				continue retry
			}
			if th.Load(keyAddr(curr)) >= key {
				return pred, curr
			}
			pred = curr
			curr = core.Addr(clearMark(nextW))
		}
	}
}

// validateUnmarkedLink checks, after tagging pred and curr, that neither is
// marked and pred still points to curr (the value-based part of Algorithm
// 1's validation; the tag part happens inside the final VAS).
func validateUnmarkedLink(th core.Thread, pred, curr core.Addr) bool {
	predNext := th.Load(nextAddr(pred))
	if isMarked(predNext) || core.Addr(clearMark(predNext)) != curr {
		return false
	}
	return !isMarked(th.Load(nextAddr(curr)))
}

// Insert adds key, reporting whether it was absent.
func (s *VAS) Insert(th core.Thread, key uint64) bool {
	for {
		if done, result := s.insertOnce(th, key, nil); done {
			return result
		}
	}
}

// insertOnce performs one tagged insert attempt. guard, if non-nil, runs
// after the data tags are placed and may join extra lines (the fallback
// Mode line) to the commit's tag set; a false return fails the attempt.
// done=false means the attempt must be retried (or abandoned to a slow
// path).
func (s *VAS) insertOnce(th core.Thread, key uint64, guard func() bool) (done, result bool) {
	enter(s.pool, th)
	defer leave(s.pool, th)
	pred, curr := s.locate(th, key)
	if th.Load(keyAddr(curr)) == key {
		return true, false
	}
	th.AddTag(pred, nodeBytes)
	th.AddTag(curr, nodeBytes)
	if guard != nil && !guard() {
		th.ClearTagSet()
		return false, false
	}
	if !validateUnmarkedLink(th, pred, curr) {
		th.ClearTagSet()
		return false, false
	}
	node := allocNode(th, s.pool, nodeWords, key, curr)
	if th.VAS(nextAddr(pred), uint64(node)) {
		th.ClearTagSet()
		return true, true
	}
	th.ClearTagSet()
	freePrivate(s.pool, th, node)
	return false, false
}

// Delete removes key, reporting whether it was present.
func (s *VAS) Delete(th core.Thread, key uint64) bool {
	for {
		if done, result := s.deleteOnce(th, key, nil); done {
			return result
		}
	}
}

// deleteOnce performs one tagged delete attempt; see insertOnce for the
// guard contract.
func (s *VAS) deleteOnce(th core.Thread, key uint64, guard func() bool) (done, result bool) {
	enter(s.pool, th)
	defer leave(s.pool, th)
	pred, curr := s.locate(th, key)
	if th.Load(keyAddr(curr)) != key {
		return true, false
	}
	th.AddTag(pred, nodeBytes)
	th.AddTag(curr, nodeBytes)
	if guard != nil && !guard() {
		th.ClearTagSet()
		return false, false
	}
	succ := th.Load(nextAddr(curr))
	if isMarked(succ) || !validateUnmarkedLink(th, pred, curr) {
		th.ClearTagSet()
		return false, false
	}
	// Logical delete via VAS (tag validation subsumes the CAS check:
	// curr was read after being tagged).
	if !th.VAS(nextAddr(curr), withMark(succ)) {
		th.ClearTagSet()
		return false, false
	}
	// Unlinking step, best effort; if our swing is the one that detaches
	// curr (rather than a helper's), we are the unique unlinker and retire.
	unlinked := th.VAS(nextAddr(pred), clearMark(succ))
	th.ClearTagSet()
	if unlinked {
		retire(s.pool, th, curr)
	}
	return true, true
}

// Contains reports whether key is present. The traversal is untagged, so
// under reclamation its safety rests entirely on the Enter/Exit bracket:
// a node it may still reach cannot be freed until it leaves.
func (s *VAS) Contains(th core.Thread, key uint64) bool {
	enter(s.pool, th)
	defer leave(s.pool, th)
	curr := core.Addr(clearMark(th.Load(nextAddr(s.head))))
	for th.Load(keyAddr(curr)) < key {
		curr = core.Addr(clearMark(th.Load(nextAddr(curr))))
	}
	return th.Load(keyAddr(curr)) == key && !isMarked(th.Load(nextAddr(curr)))
}

// Keys enumerates the set while quiescent.
func (s *VAS) Keys(th core.Thread) []uint64 { return keysFrom(th, s.head) }
