package list

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/schedexplore"
	"repro/internal/schedfuzz"
	"repro/internal/vtags"
)

func vtagsMem(threads int) core.Memory { return vtags.New(16<<20, threads) }

// TestLinearizableVTags checks every list variant's recorded history under
// schedule fuzzing (preemption jitter + forced spurious tag evictions +
// Mode-line flips) on the versioned-emulation backend.
func TestLinearizableVTags(t *testing.T) {
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"harris", func(m core.Memory) intset.Set { return NewHarris(m) }},
		{"vas", func(m core.Memory) intset.Set { return NewVAS(m) }},
		{"hoh", func(m core.Memory) intset.Set { return NewHoH(m) }},
		{"lock", func(m core.Memory) intset.Set { return NewLock(m) }},
		{"elided", func(m core.Memory) intset.Set { return NewElided(m, 4) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				fuzz := schedfuzz.Default(seed)
				intset.CheckLinearizable(t, vtagsMem, v.build, intset.LinearizeConfig{
					Threads:      4,
					OpsPerThread: intset.LinearizeOps(300),
					KeyRange:     16,
					Prefill:      8,
					Seed:         seed,
					Fuzz:         &fuzz,
					FlipMode:     true,
				})
			}
		})
	}
}

// TestLinearizableMachinePressure checks the tagged list variants on the
// cycle-accurate machine backend under MaxTags pressure: the tag budget is
// exactly the hand-over-hand window (3 lines), the L1 is shrunk until
// capacity evictions are routine, and the lax-clock sync window is
// seed-jittered. The associativity stays at 4 so a traversal only rarely
// self-evicts its own tagged window — the VAS and HoH lists retry evicted
// windows forever (no fallback path), so a cache that *always* evicts the
// window would livelock by design rather than expose a bug.
func TestLinearizableMachinePressure(t *testing.T) {
	newMem := func(seed int64) func(threads int) core.Memory {
		return func(threads int) core.Memory {
			cfg := machine.DefaultConfig(threads)
			cfg.MemBytes = 8 << 20
			cfg.MaxTags = 3
			cfg.L1Bytes = 2 << 10
			cfg.L1Ways = 4
			cfg.L2Bytes = 8 << 10
			schedfuzz.JitterSyncWindow(&cfg, seed)
			return machine.New(cfg)
		}
	}
	variants := []struct {
		name  string
		build func(core.Memory) intset.Set
	}{
		{"vas", func(m core.Memory) intset.Set { return NewVAS(m) }},
		{"hoh", func(m core.Memory) intset.Set { return NewHoH(m) }},
		{"elided", func(m core.Memory) intset.Set { return NewElided(m, 4) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			seed := int64(11)
			fuzz := schedfuzz.Default(seed)
			intset.CheckLinearizable(t, newMem(seed), v.build, intset.LinearizeConfig{
				Threads:      4,
				OpsPerThread: intset.LinearizeOps(150),
				KeyRange:     12,
				Prefill:      6,
				Seed:         seed,
				Fuzz:         &fuzz,
				FlipMode:     true,
			})
		})
	}
}

// TestExploreLinearizableMachine drives the tagged list variants through
// the cycle-level schedule explorer: the controller serializes the cores,
// enumerates interleavings at every gate point (op boundaries and the
// intra-operation directory-locking windows) and injects targeted tag
// evictions, checking each execution's history. A violation fails with the
// replayable choice sequence and machine trace.
func TestExploreLinearizableMachine(t *testing.T) {
	newMachine := func(threads int) *machine.Machine {
		cfg := machine.DefaultConfig(threads)
		cfg.MemBytes = 8 << 20
		return machine.New(cfg)
	}
	variants := []struct {
		name  string
		build func(m core.Memory) intset.Set
	}{
		{"vas", func(m core.Memory) intset.Set { return NewVAS(m) }},
		{"hoh", func(m core.Memory) intset.Set { return NewHoH(m) }},
	}
	modes := []schedexplore.Mode{schedexplore.RandomWalk, schedexplore.PCT, schedexplore.StrategyDPOR}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range modes {
				intset.CheckExploreLinearizable(t, newMachine, v.build, intset.ExploreConfig{
					Threads:      3,
					OpsPerThread: 12,
					KeyRange:     8,
					Prefill:      4,
					Seed:         21,
					Mode:         mode,
					Executions:   6,
					// Bounds DPOR branches that park a core on a busy
					// hand-over-hand lock (the spin itself is schedulable).
					MaxDecisions: 2000,
					EvictPerMil:  100,
				})
			}
		})
	}
}

// TestCheckerCatchesSkippedValidation runs the VAS list on a deliberately
// broken backend whose VAS commits without validating — the exact failure
// mode MemTags validation exists to prevent — and requires the checker to
// reject the resulting history. This is the end-to-end proof that the
// correctness tooling can see a lost update, not merely that the
// structures avoid producing one.
func TestCheckerCatchesSkippedValidation(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 6 && !caught; seed++ {
		fuzz := schedfuzz.Aggressive(seed)
		out := intset.RunLinearize(
			func(threads int) core.Memory {
				return schedfuzz.WrapSkipValidation(vtags.New(16<<20, threads))
			},
			func(m core.Memory) intset.Set { return NewVAS(m) },
			intset.LinearizeConfig{
				Threads:      4,
				OpsPerThread: 400,
				KeyRange:     2,
				Seed:         seed,
				Fuzz:         &fuzz,
			})
		if !out.OK && !out.Inconclusive {
			caught = true
			if len(out.Explain()) == 0 {
				t.Fatal("violation found but counterexample empty")
			}
		}
	}
	if !caught {
		t.Fatal("checker never caught the skipped-validation list across 6 seeds")
	}
}
