package list

import (
	"testing"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/machine"
	"repro/internal/vtags"
)

func TestElidedBasicOps(t *testing.T) {
	mem := vtags.New(8<<20, 1)
	s := NewElided(mem, 0)
	intset.CheckSequential(t, mem, s, 1500, 64, 13)
}

func TestElidedConcurrent(t *testing.T) {
	mem := vtags.New(16<<20, 4)
	s := NewElided(mem, 0)
	intset.CheckMixedConcurrent(t, mem, s, 4, 250, 24)
}

func TestElidedConcurrentOnMachine(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 16 << 20
	m := machine.New(cfg)
	s := NewElided(m, 0)
	intset.CheckMixedConcurrent(t, m, s, 4, 150, 12)
	if s.FastCommits.Load() == 0 {
		t.Fatal("no update ever committed on the fast path")
	}
}

// TestElidedFallsBackUnderSpuriousFailure is the progress guarantee the
// paper's Mode-line protocol exists for: with a pathologically small L1,
// tagged commits fail spuriously over and over, and operations must still
// complete — via the slow path.
func TestElidedFallsBackUnderSpuriousFailure(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	cfg.MemBytes = 16 << 20
	// 2 lines of L1: nearly every multi-line tag set suffers a capacity
	// eviction before its VAS.
	cfg.L1Bytes = 2 * core.LineSize
	cfg.L1Ways = 1
	m := machine.New(cfg)
	s := NewElided(m, 4)
	th := m.Thread(0)
	for k := uint64(1); k <= 60; k++ {
		if !s.Insert(th, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= 60; k++ {
		if !s.Contains(th, k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if s.SlowCommits.Load() == 0 {
		t.Fatal("expected slow-path commits under a 2-line L1")
	}
	// The mode must be restored to FAST after each slow-path operation.
	if th.Load(s.ModeAddr()) != core.ModeFast {
		t.Fatal("mode left in SLOW")
	}
}

// TestElidedModeSwitchAbortsFastPath: once a thread flips the mode, an
// in-flight fast-path commit (which tagged the Mode line via the guard)
// must fail.
func TestElidedModeSwitchAbortsFastPath(t *testing.T) {
	mem := vtags.New(8<<20, 2)
	s := NewElided(mem, 0)
	t0, t1 := mem.Thread(0), mem.Thread(1)
	s.Insert(t0, 10)

	// Hand-roll a fast-path attempt for t1, pausing before the VAS.
	pred, curr := s.vas.locate(t1, 20)
	t1.AddTag(pred, nodeBytes)
	t1.AddTag(curr, nodeBytes)
	if !s.guard(t1)() {
		t.Fatal("guard failed while mode is FAST")
	}
	// Concurrent switch to SLOW.
	s.fb.EnterSlow(t0)
	node := newNode(t1, nodeWords, 20, curr)
	if t1.VAS(nextAddr(pred), uint64(node)) {
		t.Fatal("fast-path VAS committed after the mode switched to SLOW")
	}
	t1.ClearTagSet()
	s.fb.ExitSlow(t0)
}

// TestElidedMixedPathsAgree: operations completing on different paths
// still form one linearizable set (fast VAS and slow CAS are compatible on
// the shared marked-node layout).
func TestElidedMixedPathsAgree(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cfg.MemBytes = 16 << 20
	cfg.L1Bytes = 8 * core.LineSize // small L1: frequent fallbacks
	cfg.L1Ways = 2
	m := machine.New(cfg)
	s := NewElided(m, 2)
	intset.CheckMixedConcurrent(t, m, s, 4, 120, 10)
	if s.SlowCommits.Load() == 0 || s.FastCommits.Load() == 0 {
		t.Skipf("want both paths exercised; fast=%d slow=%d",
			s.FastCommits.Load(), s.SlowCommits.Load())
	}
}
