package list

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/intset"
)

// Lock is classical hand-over-hand (lock-coupling) locking: a traversal
// holds locks on two adjacent nodes at all times, so readers must write
// (lock acquisition), the synchronization cost the paper's hand-over-hand
// *tagging* removes. Included as the historical baseline and as a valid
// slow path for the tagged variants.
type Lock struct {
	mem  core.Memory
	head core.Addr
}

var _ intset.Set = (*Lock)(nil)

// NewLock creates an empty list.
func NewLock(mem core.Memory) *Lock {
	return &Lock{mem: mem, head: newSentinels(mem.Thread(0), lockNodeWords)}
}

// acquire spins until the node's lock word is owned by th.
func acquire(th core.Thread, n core.Addr) {
	owner := uint64(th.ID()) + 1
	for spins := 0; ; spins++ {
		if th.CAS(lockAddr(n), 0, owner) {
			return
		}
		if spins%32 == 31 {
			runtime.Gosched()
		}
	}
}

// release unlocks the node; the caller must own it.
func release(th core.Thread, n core.Addr) {
	th.Store(lockAddr(n), 0)
}

// locate returns adjacent nodes pred, curr with pred.key < key <= curr.key,
// holding both locks. The caller must release them.
func (s *Lock) locate(th core.Thread, key uint64) (pred, curr core.Addr) {
	pred = s.head
	acquire(th, pred)
	curr = core.Addr(th.Load(nextAddr(pred)))
	acquire(th, curr)
	for th.Load(keyAddr(curr)) < key {
		release(th, pred)
		pred = curr
		curr = core.Addr(th.Load(nextAddr(curr)))
		acquire(th, curr)
	}
	return pred, curr
}

// Insert adds key, reporting whether it was absent.
func (s *Lock) Insert(th core.Thread, key uint64) bool {
	pred, curr := s.locate(th, key)
	defer release(th, pred)
	defer release(th, curr)
	if th.Load(keyAddr(curr)) == key {
		return false
	}
	node := newNode(th, lockNodeWords, key, curr)
	th.Store(nextAddr(pred), uint64(node))
	return true
}

// Delete removes key, reporting whether it was present.
func (s *Lock) Delete(th core.Thread, key uint64) bool {
	pred, curr := s.locate(th, key)
	defer release(th, pred)
	defer release(th, curr)
	if th.Load(keyAddr(curr)) != key {
		return false
	}
	th.Store(nextAddr(pred), th.Load(nextAddr(curr)))
	return true
}

// Contains reports whether key is present.
func (s *Lock) Contains(th core.Thread, key uint64) bool {
	pred, curr := s.locate(th, key)
	found := th.Load(keyAddr(curr)) == key
	release(th, pred)
	release(th, curr)
	return found
}

// Keys enumerates the set while quiescent.
func (s *Lock) Keys(th core.Thread) []uint64 { return keysFrom(th, s.head) }
