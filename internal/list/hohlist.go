package list

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
)

// HoH is Algorithm 2 of the paper: hand-over-hand *tagging*. Traversals
// keep a sliding window of tags over the last two nodes, validating as they
// go, so readers never write (unlike hand-over-hand locking) and nodes need
// no mark bits. Correctness rests on the synchronization rule that a delete
// is performed by invalidate-and-swap, which invalidates the removed node
// at every core: any traversal holding a tag on it fails its next
// validation and restarts (transient marking). Without the invalidation,
// the design is incorrect — see Figure 1 of the paper and
// TestHoHWhyIASIsNeeded.
type HoH struct {
	mem  core.Memory
	head core.Addr
	pool *reclaim.Pool
}

var _ intset.Set = (*HoH)(nil)

// NewHoH creates an empty list.
func NewHoH(mem core.Memory) *HoH {
	// The traversal window holds three nodes (pred, curr, succ).
	if mem.MaxTags() < 3 {
		panic("list: MaxTags below the HoH tagging window (3 lines)")
	}
	return &HoH{mem: mem, head: newSentinels(mem.Thread(0), nodeWords)}
}

// SetReclaim wires a reclamation pool (object size nodeWords). HoH is the
// fully-tagged design: every traversal holds tags on the nodes it trusts
// and deletes go through IAS, so a reader that reached a node since
// retired is guaranteed to fail its next validation — the immediate-free
// condition from the reclamation paper in its purest form. Only call while
// quiescent, before operations.
func (s *HoH) SetReclaim(p *reclaim.Pool) { s.pool = p }

// locate traverses hand-over-hand and returns pred, curr with
// pred.key < key <= curr.key. On return, pred and curr are tagged and were
// both present in the list at the last successful validation; the caller
// must eventually ClearTagSet.
func (s *HoH) locate(th core.Thread, key uint64) (pred, curr core.Addr) {
	for {
		th.ClearTagSet()
		pred = s.head
		th.AddTag(pred, nodeBytes)
		curr = core.Addr(th.Load(nextAddr(pred)))
		th.AddTag(curr, nodeBytes)
		if !th.Validate() {
			continue
		}
		restart := false
		for th.Load(keyAddr(curr)) < key {
			succ := core.Addr(th.Load(nextAddr(curr)))
			th.AddTag(succ, nodeBytes)
			// Validate with all three tagged: pred and curr are unchanged
			// since the last validation (when they were in the list), so
			// succ — read from curr.next after tagging curr — was curr's
			// successor and hence in the list too. The invariant extends
			// to succ, and only then may the oldest tag be dropped.
			if !th.Validate() {
				restart = true
				break
			}
			th.RemoveTag(pred, nodeBytes)
			pred = curr
			curr = succ
		}
		if restart {
			continue
		}
		// A final validation covers the key read that ended the loop.
		if !th.Validate() {
			continue
		}
		return pred, curr
	}
}

// Insert adds key, reporting whether it was absent.
func (s *HoH) Insert(th core.Thread, key uint64) bool {
	enter(s.pool, th)
	defer leave(s.pool, th)
	for {
		pred, curr := s.locate(th, key)
		if th.Load(keyAddr(curr)) == key {
			th.ClearTagSet()
			return false
		}
		node := allocNode(th, s.pool, nodeWords, key, curr)
		// Insert deletes nothing, so plain VAS suffices (Algorithm 2).
		if th.VAS(nextAddr(pred), uint64(node)) {
			th.ClearTagSet()
			return true
		}
		th.ClearTagSet()
		freePrivate(s.pool, th, node)
	}
}

// Delete removes key, reporting whether it was present.
func (s *HoH) Delete(th core.Thread, key uint64) bool {
	enter(s.pool, th)
	defer leave(s.pool, th)
	for {
		pred, curr := s.locate(th, key)
		if th.Load(keyAddr(curr)) != key {
			th.ClearTagSet()
			return false
		}
		succ := th.Load(nextAddr(curr))
		// IAS: atomically validate {pred, curr}, invalidate them at every
		// other core — the transient marking that aborts concurrent
		// traversals and updates holding a tag on curr — and swing
		// pred.next to succ.
		if th.IAS(nextAddr(pred), succ) {
			th.ClearTagSet()
			// The IAS validated that pred still pointed at curr, so this
			// thread is the unique unlinker.
			retire(s.pool, th, curr)
			return true
		}
		th.ClearTagSet()
	}
}

// Contains reports whether key is present. The hand-over-hand tagging
// inside locate established a moment at which curr was in the list, which
// is the linearization point (last successful validate).
func (s *HoH) Contains(th core.Thread, key uint64) bool {
	enter(s.pool, th)
	defer leave(s.pool, th)
	_, curr := s.locate(th, key)
	found := th.Load(keyAddr(curr)) == key
	th.ClearTagSet()
	return found
}

// Keys enumerates the set while quiescent.
func (s *HoH) Keys(th core.Thread) []uint64 { return keysFrom(th, s.head) }
