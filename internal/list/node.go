// Package list implements the paper's concurrent singly-linked ordered
// sets over simulated tagged memory (Section 4):
//
//   - Harris: the lock-free Harris-Michael list with pointer marking — the
//     paper's software baseline.
//   - VAS: Algorithm 1, marking complemented by tag validation, with every
//     pointer swing done by validate-and-swap.
//   - HoH: Algorithm 2, hand-over-hand tagging with no mark bits; deletes
//     use invalidate-and-swap (transient marking).
//   - Lock: classical hand-over-hand locking, the historical comparison
//     point (readers must write).
//
// Nodes are two words (key, next) placed on private cache lines; the mark
// bit of the Harris/VAS variants lives in bit 0 of the next pointer, which
// is always line-aligned. By default simulated memory is an arena that
// never recycles addresses (the paper's simulator runs never free nodes);
// the VAS and HoH variants can additionally be wired to a reclaim.Pool
// (SetReclaim), which recycles unlinked nodes through the tag-conditioned
// retire pipeline. Recycling introduces no ABA hazard for these variants
// because every pointer swing is tag-validated: a recycled line's reuse
// writes invalidate any stale tag. The Harris baseline (and therefore the
// Elided fallback path, which shares its nodes with Harris CAS updates) is
// plain CAS and must stay on the non-recycling arena.
package list

import (
	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/reclaim"
)

// Node field offsets, in words.
const (
	fKey  = 0
	fNext = 1
	fLock = 2 // used only by the locking variant

	nodeWords = 2
	nodeBytes = nodeWords * core.WordSize

	lockNodeWords = 3
	lockNodeBytes = lockNodeWords * core.WordSize
)

// NodeWords is the reclamation pool object size for the tag-based lists
// (SetReclaim on VAS and HoH).
const NodeWords = nodeWords

// Sentinel keys. Head holds the smallest, tail the largest possible key;
// user keys must lie in [intset.KeyMin, intset.KeyMax].
const (
	headKey uint64 = 0
	tailKey uint64 = ^uint64(0)
)

// Mark-bit helpers: bit 0 of a next pointer marks the *containing* node as
// logically deleted (Harris/VAS variants).
func isMarked(w uint64) bool    { return w&1 != 0 }
func withMark(w uint64) uint64  { return w | 1 }
func clearMark(w uint64) uint64 { return w &^ 1 }

func keyAddr(n core.Addr) core.Addr  { return n.Plus(fKey) }
func nextAddr(n core.Addr) core.Addr { return n.Plus(fNext) }
func lockAddr(n core.Addr) core.Addr { return n.Plus(fLock) }

// newNode allocates and initializes a (key, next) node of the given size in
// words.
func newNode(th core.Thread, words int, key uint64, next core.Addr) core.Addr {
	n := th.Alloc(words)
	th.Store(keyAddr(n), key)
	th.Store(nextAddr(n), uint64(next))
	return n
}

// allocNode is newNode routed through a reclamation pool when one is
// wired: recycled nodes come back with stale (type-stable) contents, so
// both words are rewritten before the node is published.
func allocNode(th core.Thread, p *reclaim.Pool, words int, key uint64, next core.Addr) core.Addr {
	if p == nil {
		return newNode(th, words, key, next)
	}
	n := p.Alloc(th)
	th.Store(keyAddr(n), key)
	th.Store(nextAddr(n), uint64(next))
	return n
}

// enter / leave bracket one structure operation in the pool's reclamation
// domain (no-ops without a pool): frees of nodes retired while the op runs
// are deferred past its leave.
func enter(p *reclaim.Pool, th core.Thread) {
	if p != nil {
		p.Enter(th)
	}
}

func leave(p *reclaim.Pool, th core.Thread) {
	if p != nil {
		p.Exit(th)
	}
}

// retire hands an unlinked node to the pool (no-op without one). The
// caller must be the unique unlinker and hold no tags on the node.
func retire(p *reclaim.Pool, th core.Thread, n core.Addr) {
	if p != nil {
		p.Retire(th, n)
	}
}

// freePrivate returns a never-published node to the pool (no-op without
// one): the linking swing failed, so no other thread saw the address.
func freePrivate(p *reclaim.Pool, th core.Thread, n core.Addr) {
	if p != nil {
		p.FreePrivate(th, n)
	}
}

// newSentinels builds head -> tail and returns the head address.
func newSentinels(th core.Thread, words int) core.Addr {
	tail := newNode(th, words, tailKey, core.NilAddr)
	return newNode(th, words, headKey, tail)
}

// keysFrom walks the list from head while quiescent, skipping marked nodes,
// and returns user keys in order. Shared by all variants' Keys methods.
func keysFrom(th core.Thread, head core.Addr) []uint64 {
	var keys []uint64
	curr := core.Addr(clearMark(th.Load(nextAddr(head))))
	for !curr.IsNil() {
		k := th.Load(keyAddr(curr))
		next := th.Load(nextAddr(curr))
		if k != tailKey && !isMarked(next) && k >= intset.KeyMin {
			keys = append(keys, k)
		}
		curr = core.Addr(clearMark(next))
	}
	return keys
}
