package list

import (
	"repro/internal/core"
)

// RangeQuery returns an atomic snapshot of the keys in [lo, hi], using the
// paper's cheap lock-free snapshot idea: the traversal tags every node from
// the predecessor of lo through the successor of hi *without untagging*, so
// one final validation proves the whole range was simultaneously in the
// list. ok is false when the range exceeds the tag budget or validation
// kept failing for maxTries attempts — callers then fall back to a non-
// atomic scan or a coarse-grained technique.
func (s *HoH) RangeQuery(th core.Thread, lo, hi uint64, maxTries int) (keys []uint64, ok bool) {
	if lo > hi {
		return nil, true
	}
attempt:
	for try := 0; try < maxTries; try++ {
		keys = keys[:0]
		th.ClearTagSet()

		// Hand-over-hand prefix: slide a two-node window up to the
		// predecessor of lo (same invariant as locate).
		pred := s.head
		if !th.AddTag(pred, nodeBytes) {
			th.ClearTagSet()
			return nil, false
		}
		curr := core.Addr(th.Load(nextAddr(pred)))
		if !th.AddTag(curr, nodeBytes) || !th.Validate() {
			th.ClearTagSet()
			continue attempt
		}
		for th.Load(keyAddr(curr)) < lo {
			succ := core.Addr(th.Load(nextAddr(curr)))
			if !th.AddTag(succ, nodeBytes) || !th.Validate() {
				th.ClearTagSet()
				continue attempt
			}
			th.RemoveTag(pred, nodeBytes)
			pred = curr
			curr = succ
		}

		// Range body: keep every node tagged until the final validation.
		for {
			k := th.Load(keyAddr(curr))
			if k > hi || k == tailKey {
				break
			}
			keys = append(keys, k)
			succ := core.Addr(th.Load(nextAddr(curr)))
			if !th.AddTag(succ, nodeBytes) {
				// Tag budget exhausted: this range cannot be snapshotted.
				th.ClearTagSet()
				return nil, false
			}
			if !th.Validate() {
				th.ClearTagSet()
				continue attempt
			}
			curr = succ
		}
		// Every node from pred-of-lo through succ-of-hi is tagged; one
		// validation linearizes the whole snapshot.
		if th.Validate() {
			th.ClearTagSet()
			return keys, true
		}
		th.ClearTagSet()
	}
	return nil, false
}

// RangeScan is the non-atomic fallback: a plain traversal of [lo, hi]. It
// is linearizable per-key but not as a whole (concurrent updates may be
// partially observed), matching what a baseline list offers without
// tagging.
func (s *HoH) RangeScan(th core.Thread, lo, hi uint64) []uint64 {
	var keys []uint64
	curr := core.Addr(th.Load(nextAddr(s.head)))
	for {
		k := th.Load(keyAddr(curr))
		if k > hi || k == tailKey {
			return keys
		}
		if k >= lo {
			keys = append(keys, k)
		}
		curr = core.Addr(th.Load(nextAddr(curr)))
	}
}
