package mem

import "repro/internal/core"

// ArenaExtentLines is the number of cache lines an Arena grabs from the
// shared cursor per refill. Small enough that a 512-core machine parks at
// most ~2 MiB of simulated memory in partially used extents, large enough
// that a thread allocating tree nodes (1-3 lines each) touches the shared
// cursor once per ~30 allocations.
const ArenaExtentLines = 64

// Arena is a per-thread bump allocator over a Space: a private extent
// refilled from the shared cursor. The fast path (allocation fits the
// current extent) touches no shared state at all, so 512 simulated cores
// allocating concurrently do not contend. An Arena must only be used from
// one goroutine at a time, like the Thread handle that owns it.
//
// Layout determinism: a single thread allocating alone sees a fixed
// address sequence for a fixed allocation sequence (extent grabs are just
// cursor bumps), which is what the parallel harness's bit-identical
// replay of single-threaded cells relies on. Multi-threaded layout depends
// on extent-grab interleaving, exactly as the old mutex allocator's did.
type Arena struct {
	space *Space
	cur   core.Addr // next free byte in the current extent, line-aligned
	end   core.Addr // one past the current extent
}

// NewArena returns an empty arena over s; the first allocation grabs an
// extent.
func NewArena(s *Space) *Arena { return &Arena{space: s} }

// Alloc allocates nWords words aligned to a cache-line boundary, like
// Space.Alloc. Requests larger than half an extent bypass the arena and go
// straight to the shared cursor, so oversized objects do not flush a
// mostly-empty extent.
func (ar *Arena) Alloc(nWords int) core.Addr {
	if nWords <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	bytes := nWords * core.WordSize
	lines := (bytes + core.LineSize - 1) / core.LineSize
	if lines > ArenaExtentLines/2 {
		return ar.space.grabLines(lines)
	}
	sz := core.Addr(lines * core.LineSize)
	if ar.cur+sz > ar.end {
		ar.cur = ar.space.grabLines(ArenaExtentLines)
		ar.end = ar.cur + ArenaExtentLines*core.LineSize
	}
	a := ar.cur
	ar.cur += sz
	return a
}
