package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestAllocLineAligned(t *testing.T) {
	s := NewSpace(1 << 16)
	for i := 0; i < 20; i++ {
		a := s.Alloc(1 + i%7)
		if uint64(a)%core.LineSize != 0 {
			t.Fatalf("allocation %d at %#x not line-aligned", i, uint64(a))
		}
		if a == core.NilAddr {
			t.Fatal("allocator handed out the nil line")
		}
	}
}

func TestAllocDistinctLines(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(2)
	b := s.Alloc(2)
	if a.Line() == b.Line() {
		t.Fatalf("objects share line: %#x and %#x", uint64(a), uint64(b))
	}
}

func TestAllocMultiLine(t *testing.T) {
	s := NewSpace(1 << 16)
	a := s.Alloc(core.WordsPerLine + 1) // needs 2 lines
	b := s.Alloc(1)
	if b.Line() != a.Line()+2 {
		t.Fatalf("multi-line allocation not accounted: a=%d b=%d", a.Line(), b.Line())
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	s := NewSpace(4 * core.LineSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	for i := 0; i < 10; i++ {
		s.Alloc(core.WordsPerLine)
	}
}

func TestAllocNonPositivePanics(t *testing.T) {
	s := NewSpace(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Alloc(0)")
		}
	}()
	s.Alloc(0)
}

func TestReadWrite(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(4)
	s.Write(a.Plus(2), 0xdeadbeef)
	if got := s.Read(a.Plus(2)); got != 0xdeadbeef {
		t.Fatalf("Read = %#x, want 0xdeadbeef", got)
	}
	if got := s.Read(a); got != 0 {
		t.Fatalf("fresh word = %#x, want 0", got)
	}
}

func TestUnalignedPanics(t *testing.T) {
	s := NewSpace(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unaligned access")
		}
	}()
	s.Read(core.Addr(core.LineSize + 3))
}

func TestConcurrentAlloc(t *testing.T) {
	s := NewSpace(1 << 20)
	const workers, per = 8, 100
	got := make([][]core.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], s.Alloc(3))
			}
		}(w)
	}
	wg.Wait()
	seen := map[core.Line]bool{}
	for _, as := range got {
		for _, a := range as {
			if seen[a.Line()] {
				t.Fatalf("line %d allocated twice", a.Line())
			}
			seen[a.Line()] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d distinct lines, want %d", len(seen), workers*per)
	}
}

// Property: written values read back, and writes to one word never clobber
// neighbouring words.
func TestReadWriteProperty(t *testing.T) {
	s := NewSpace(1 << 16)
	base := s.Alloc(64)
	f := func(idx uint8, v uint64) bool {
		i := int(idx % 62)
		a := base.Plus(i + 1)
		before := s.Read(base.Plus(i))
		s.Write(a, v)
		return s.Read(a) == v && s.Read(base.Plus(i)) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomicOps(t *testing.T) {
	s := NewSpace(1 << 12)
	a := s.Alloc(1)
	s.AtomicWrite(a, 7)
	if s.AtomicRead(a) != 7 {
		t.Fatal("AtomicRead after AtomicWrite")
	}
	if !s.AtomicCAS(a, 7, 9) {
		t.Fatal("CAS with matching old failed")
	}
	if s.AtomicCAS(a, 7, 11) {
		t.Fatal("CAS with stale old succeeded")
	}
	if s.AtomicRead(a) != 9 {
		t.Fatalf("value = %d, want 9", s.AtomicRead(a))
	}
}
