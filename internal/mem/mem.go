// Package mem provides the flat simulated address space shared by the
// MemTags backends: a fixed-size array of 64-bit words plus a thread-safe
// bump allocator that hands out cache-line-aligned blocks.
//
// The space itself enforces no synchronization on word access; each backend
// layers its own coherence discipline on top (the machine backend accesses
// words under per-line directory locks, the vtags backend uses atomics).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Space is a simulated physical address space.
type Space struct {
	words []uint64

	mu   sync.Mutex
	next core.Addr // next free byte, always line-aligned
}

// NewSpace creates a space of the given size in bytes, rounded up to a
// whole number of cache lines. The first line is reserved so that address 0
// can serve as the nil pointer.
func NewSpace(bytes int) *Space {
	if bytes < 2*core.LineSize {
		bytes = 2 * core.LineSize
	}
	lines := (bytes + core.LineSize - 1) / core.LineSize
	return &Space{
		words: make([]uint64, lines*core.WordsPerLine),
		next:  core.LineSize, // reserve line 0 (nil)
	}
}

// SizeBytes returns the total size of the space in bytes.
func (s *Space) SizeBytes() int { return len(s.words) * core.WordSize }

// NumLines returns the number of cache lines in the space.
func (s *Space) NumLines() int { return len(s.words) / core.WordsPerLine }

// Alloc allocates nWords words aligned to a cache-line boundary. Each
// allocation starts on its own line, so distinct objects never share a line
// (the paper maps every node to a unique line to avoid false sharing).
// Alloc panics if the space is exhausted: simulated memory is sized up
// front by the experiment configuration, and exhaustion is a setup bug.
func (s *Space) Alloc(nWords int) core.Addr {
	if nWords <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	bytes := nWords * core.WordSize
	lines := (bytes + core.LineSize - 1) / core.LineSize

	s.mu.Lock()
	a := s.next
	s.next += core.Addr(lines * core.LineSize)
	end := s.next
	s.mu.Unlock()

	if int(end) > s.SizeBytes() {
		panic(fmt.Sprintf("mem: address space exhausted (%d bytes)", s.SizeBytes()))
	}
	return a
}

// AllocatedBytes returns the number of bytes handed out so far, including
// the reserved nil line.
func (s *Space) AllocatedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next)
}

// Word returns a pointer to the word at address a. a must be word-aligned
// and in range.
func (s *Space) Word(a core.Addr) *uint64 {
	if a%core.WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", uint64(a)))
	}
	return &s.words[a.Word()]
}

// Read returns the word at a without synchronization. Callers must hold
// whatever lock their backend associates with a's line.
func (s *Space) Read(a core.Addr) uint64 { return *s.Word(a) }

// Write stores v at a without synchronization. Callers must hold whatever
// lock their backend associates with a's line.
func (s *Space) Write(a core.Addr, v uint64) { *s.Word(a) = v }

// AtomicRead returns the word at a using an atomic load, for backends that
// do not serialize readers against writers.
func (s *Space) AtomicRead(a core.Addr) uint64 { return atomic.LoadUint64(s.Word(a)) }

// AtomicWrite stores v at a using an atomic store.
func (s *Space) AtomicWrite(a core.Addr, v uint64) { atomic.StoreUint64(s.Word(a), v) }

// AtomicCAS performs a compare-and-swap on the word at a.
func (s *Space) AtomicCAS(a core.Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(s.Word(a), old, new)
}
