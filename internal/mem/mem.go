// Package mem provides the flat simulated address space shared by the
// MemTags backends: a fixed-size array of 64-bit words plus a thread-safe
// bump allocator that hands out cache-line-aligned blocks.
//
// The space itself enforces no synchronization on word access; each backend
// layers its own coherence discipline on top (the machine backend accesses
// words under per-line directory locks, the vtags backend uses atomics).
package mem

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Chunked backing store: experiments size their simulated spaces
// generously (tens to hundreds of MiB) but typically touch a small
// fraction, and a fresh Space is created for every experiment cell.
// Allocating (and zeroing) the whole word array eagerly made Space
// construction the dominant host cost of the harness — ~30% of figure
// regeneration was memclr. The words live in fixed-size chunks installed
// on first touch instead; only the pointer spine is allocated up front.
const (
	// ChunkLines is the number of cache lines per backing chunk (256 KiB
	// of simulated memory). Exported so backends that mirror per-line
	// state (directory entries, version locks) can chunk at the same
	// granularity.
	ChunkLines    = 4096
	wordsPerChunk = ChunkLines * core.WordsPerLine
)

type wordChunk [wordsPerChunk]uint64

// Space is a simulated physical address space.
type Space struct {
	chunks []atomic.Pointer[wordChunk]
	lines  int // configured size in cache lines

	// next is the bump cursor (next free byte, always line-aligned). It
	// was a mutex-protected field; at 256+ simulated cores the allocation
	// mutex was a machine-wide serialization point, so the cursor is now a
	// single fetch-and-add. Per-thread Arenas amortize even that into one
	// atomic per extent.
	next atomic.Uint64
}

// NewSpace creates a space of the given size in bytes, rounded up to a
// whole number of cache lines. The first line is reserved so that address 0
// can serve as the nil pointer.
func NewSpace(bytes int) *Space {
	if bytes < 2*core.LineSize {
		bytes = 2 * core.LineSize
	}
	lines := (bytes + core.LineSize - 1) / core.LineSize
	nChunks := (lines + ChunkLines - 1) / ChunkLines
	s := &Space{
		chunks: make([]atomic.Pointer[wordChunk], nChunks),
		lines:  lines,
	}
	s.next.Store(core.LineSize) // reserve line 0 (nil)
	return s
}

// SizeBytes returns the total size of the space in bytes.
func (s *Space) SizeBytes() int { return s.lines * core.LineSize }

// NumLines returns the number of cache lines in the space.
func (s *Space) NumLines() int { return s.lines }

// Alloc allocates nWords words aligned to a cache-line boundary. Each
// allocation starts on its own line, so distinct objects never share a line
// (the paper maps every node to a unique line to avoid false sharing).
// Alloc panics if the space is exhausted: simulated memory is sized up
// front by the experiment configuration, and exhaustion is a setup bug.
func (s *Space) Alloc(nWords int) core.Addr {
	if nWords <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	bytes := nWords * core.WordSize
	lines := (bytes + core.LineSize - 1) / core.LineSize
	return s.grabLines(lines)
}

// grabLines advances the bump cursor by the given number of lines and
// returns the start of the reserved range.
func (s *Space) grabLines(lines int) core.Addr {
	end := s.next.Add(uint64(lines * core.LineSize))
	if int(end) > s.SizeBytes() {
		panic(fmt.Sprintf("mem: address space exhausted (%d bytes)", s.SizeBytes()))
	}
	return core.Addr(end) - core.Addr(lines*core.LineSize)
}

// AllocatedBytes returns the number of bytes handed out so far, including
// the reserved nil line and any lines granted to Arenas but not yet handed
// to callers.
func (s *Space) AllocatedBytes() int {
	return int(s.next.Load())
}

// Word returns a pointer to the word at address a. a must be word-aligned
// and in range. The backing chunk is installed on first touch; installs
// use an atomic compare-and-swap so concurrent first touches of one chunk
// are safe from any goroutine.
func (s *Space) Word(a core.Addr) *uint64 {
	if a%core.WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", uint64(a)))
	}
	w := a.Word()
	if int(a/core.LineSize) >= s.lines {
		panic(fmt.Sprintf("mem: access at %#x beyond space (%d bytes)", uint64(a), s.SizeBytes()))
	}
	ci := w / wordsPerChunk
	c := s.chunks[ci].Load()
	if c == nil {
		c = s.installChunk(ci)
	}
	return &c[w%wordsPerChunk]
}

// installChunk materializes chunk ci, losing the race gracefully if
// another goroutine installs it first.
func (s *Space) installChunk(ci uint64) *wordChunk {
	fresh := new(wordChunk)
	if s.chunks[ci].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return s.chunks[ci].Load()
}

// Read returns the word at a without synchronization. Callers must hold
// whatever lock their backend associates with a's line.
func (s *Space) Read(a core.Addr) uint64 { return *s.Word(a) }

// Write stores v at a without synchronization. Callers must hold whatever
// lock their backend associates with a's line.
func (s *Space) Write(a core.Addr, v uint64) { *s.Word(a) = v }

// AtomicRead returns the word at a using an atomic load, for backends that
// do not serialize readers against writers.
func (s *Space) AtomicRead(a core.Addr) uint64 { return atomic.LoadUint64(s.Word(a)) }

// AtomicWrite stores v at a using an atomic store.
func (s *Space) AtomicWrite(a core.Addr, v uint64) { atomic.StoreUint64(s.Word(a), v) }

// AtomicCAS performs a compare-and-swap on the word at a.
func (s *Space) AtomicCAS(a core.Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(s.Word(a), old, new)
}
