package mem

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestArenaLineAlignedDistinct(t *testing.T) {
	s := NewSpace(1 << 20)
	ar := NewArena(s)
	seen := map[core.Line]bool{}
	for i := 0; i < 300; i++ {
		a := ar.Alloc(1 + i%20)
		if uint64(a)%core.LineSize != 0 {
			t.Fatalf("allocation %d at %#x not line-aligned", i, uint64(a))
		}
		if a == core.NilAddr {
			t.Fatal("arena handed out the nil line")
		}
		if seen[a.Line()] {
			t.Fatalf("line %d allocated twice", a.Line())
		}
		seen[a.Line()] = true
	}
}

// A single thread allocating alone must see a fixed address sequence for a
// fixed allocation sequence — the parallel harness's bit-identical replay
// of single-threaded cells depends on it.
func TestArenaDeterministicLayout(t *testing.T) {
	seq := func() []core.Addr {
		s := NewSpace(1 << 20)
		ar := NewArena(s)
		var out []core.Addr
		for i := 0; i < 200; i++ {
			out = append(out, ar.Alloc(1+(i*7)%40))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs between runs: %#x vs %#x", i, uint64(a[i]), uint64(b[i]))
		}
	}
}

// Oversized requests bypass the arena extent and must still be disjoint
// from arena-served allocations.
func TestArenaLargeAlloc(t *testing.T) {
	s := NewSpace(1 << 22)
	ar := NewArena(s)
	small := ar.Alloc(1)
	big := ar.Alloc(ArenaExtentLines * core.WordsPerLine) // way past the bypass threshold
	small2 := ar.Alloc(1)
	bigFirst, bigLast := big.Line(), big.Line()+core.Line(ArenaExtentLines-1)
	for _, a := range []core.Addr{small, small2} {
		if a.Line() >= bigFirst && a.Line() <= bigLast {
			t.Fatalf("arena allocation at line %d overlaps large block [%d,%d]", a.Line(), bigFirst, bigLast)
		}
	}
	if small2.Line() == small.Line() {
		t.Fatal("distinct allocations share a line")
	}
}

// Concurrent arenas over one space never hand out overlapping lines.
func TestArenaConcurrentDisjoint(t *testing.T) {
	s := NewSpace(1 << 22)
	const workers, per = 16, 200
	got := make([][]core.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ar := NewArena(s)
			for i := 0; i < per; i++ {
				got[w] = append(got[w], ar.Alloc(1+(w+i)%9))
			}
		}(w)
	}
	wg.Wait()
	seen := map[core.Line]bool{}
	for _, as := range got {
		for _, a := range as {
			if seen[a.Line()] {
				t.Fatalf("line %d allocated twice", a.Line())
			}
			seen[a.Line()] = true
		}
	}
}

// Arena exhaustion must panic like Space.Alloc exhaustion.
func TestArenaExhaustionPanics(t *testing.T) {
	s := NewSpace(8 * core.LineSize)
	ar := NewArena(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	for i := 0; i < 1000; i++ {
		ar.Alloc(core.WordsPerLine)
	}
}
